#ifndef CDPIPE_PIPELINE_ANOMALY_FILTER_H_
#define CDPIPE_PIPELINE_ANOMALY_FILTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Drops anomalous rows from a table batch using a user-supplied predicate —
/// the Taxi pipeline's anomaly detector (trips longer than 22 hours, shorter
/// than 10 seconds, or with zero distance).  Stateless data transformation
/// (a filter, Table 1 of the paper).
class AnomalyFilter : public PipelineComponent {
 public:
  /// Batch-level predicate: `*keep` arrives sized to the batch's row count
  /// and filled with 1; the predicate zeroes the rows to DROP.  Resolving
  /// columns once per batch (instead of once per row) is what lets filter
  /// rules run as column kernels.  Errors propagate and abort the batch.
  using Predicate =
      std::function<Status(const TableData& table, std::vector<uint8_t>* keep)>;

  AnomalyFilter(std::string rule_name, Predicate keep);

  /// Keeps rows whose numeric `column` lies within [min, max] (inclusive);
  /// null cells are dropped as anomalous.
  static std::unique_ptr<AnomalyFilter> KeepInRange(const std::string& column,
                                                    double min, double max);

  std::string name() const override { return "anomaly_filter(" + rule_name_ + ")"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Result<DataBatch> TransformOwned(DataBatch&& batch) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  /// Total rows dropped since construction.
  size_t num_dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::string rule_name_;
  Predicate keep_;
  mutable std::atomic<size_t> dropped_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_ANOMALY_FILTER_H_
