#include "src/pipeline/fusion/fusion.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/pipeline/component.h"

namespace cdpipe {
namespace fusion {

uint64_t SchemaFingerprint(const Schema& schema) {
  // FNV-1a over (name bytes, 0, type byte, 0) per field, in order.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const Field& field : schema.fields()) {
    for (char c : field.name) mix(static_cast<uint8_t>(c));
    mix(0);
    mix(static_cast<uint8_t>(field.type));
    mix(0);
  }
  return h;
}

void CountStagesElided(size_t n) {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "pipeline.stages_elided",
      "Fused-plan stages skipped as provably no-op (per block)");
  counter->Add(static_cast<int64_t>(n));
}

namespace {

/// Accounting stand-in for a component whose work was elided at compile
/// time: replicates the interpreted loop's rows-scanned contribution and
/// counts one elision per block, but touches no data.
class ElidedStage final : public FusedStage {
 public:
  ElidedStage(const char* label, PlanBuilder::Repr repr)
      : label_(label), repr_(repr) {}

  const char* label() const override { return label_; }

  Status Run(ExecContext& ctx) const override {
    ctx.rows_scanned += repr_ == PlanBuilder::Repr::kTable
                            ? ctx.scratch->table.live_rows
                            : ctx.scratch->vec.num_rows();
    ++ctx.stages_elided;
    return Status::OK();
  }

 private:
  const char* label_;
  PlanBuilder::Repr repr_;
};

/// Terminal stage: materializes the vector block as FeatureData.  Entries
/// are already collapsed per row (strictly increasing indices — the
/// VecBlock invariant every upstream kernel maintains), so each row's
/// parallel arrays are filled with tight copy loops and adopted via
/// FromSortedUnchecked; debug builds re-assert the invariant there.
class EmitVecStage final : public FusedStage {
 public:
  const char* label() const override { return "emit_features"; }

  Status Run(ExecContext& ctx) const override {
    const VecBlock& vec = ctx.scratch->vec;
    FeatureData& out = *ctx.out;
    out.dim = vec.dim;
    out.features.clear();
    out.features.reserve(vec.num_rows());
    uint32_t start = 0;
    for (size_t r = 0; r < vec.num_rows(); ++r) {
      const uint32_t stop = vec.row_end[r];
      const size_t n = stop - start;
      std::vector<uint32_t> indices(n);
      std::vector<double> values(n);
      for (size_t k = 0; k < n; ++k) {
        indices[k] = vec.entries[start + k].first;
        values[k] = vec.entries[start + k].second;
      }
      out.features.push_back(SparseVector::FromSortedUnchecked(
          vec.dim, std::move(indices), std::move(values)));
      start = stop;
    }
    out.labels = vec.labels;
    return Status::OK();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// PlanBuilder
// ---------------------------------------------------------------------------

Result<size_t> PlanBuilder::SlotOf(const std::string& field) const {
  if (repr_ != Repr::kTable) {
    return Status::FailedPrecondition("no table in scope at this stage");
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t logical, schema_->FieldIndex(field));
  return slot_of_field_[logical];
}

Result<size_t> PlanBuilder::AddSlot(const Field& field) {
  if (repr_ != Repr::kTable) {
    return Status::FailedPrecondition("no table in scope at this stage");
  }
  CDPIPE_ASSIGN_OR_RETURN(schema_, schema_->AddField(field));
  const size_t slot = slot_types_.size();
  slot_of_field_.push_back(slot);
  slot_types_.push_back(field.type);
  return slot;
}

Status PlanBuilder::Project(const std::vector<std::string>& fields) {
  if (repr_ != Repr::kTable) {
    return Status::FailedPrecondition("no table in scope at this stage");
  }
  std::vector<Field> new_fields;
  std::vector<size_t> new_slots;
  new_fields.reserve(fields.size());
  new_slots.reserve(fields.size());
  for (const std::string& name : fields) {
    CDPIPE_ASSIGN_OR_RETURN(size_t logical, schema_->FieldIndex(name));
    new_fields.push_back(schema_->field(logical));
    new_slots.push_back(slot_of_field_[logical]);
  }
  CDPIPE_ASSIGN_OR_RETURN(schema_, Schema::Make(std::move(new_fields)));
  slot_of_field_ = std::move(new_slots);
  return Status::OK();
}

Status PlanBuilder::BeginTable(std::shared_ptr<const Schema> schema) {
  if (repr_ != Repr::kRaw) {
    return Status::FailedPrecondition("table entry requires raw records");
  }
  schema_ = std::move(schema);
  slot_of_field_.resize(schema_->num_fields());
  slot_types_.resize(schema_->num_fields());
  for (size_t i = 0; i < schema_->num_fields(); ++i) {
    slot_of_field_[i] = i;
    slot_types_[i] = schema_->field(i).type;
  }
  repr_ = Repr::kTable;
  return Status::OK();
}

void PlanBuilder::BeginVec(uint32_t dim) {
  vec_dim_ = dim;
  repr_ = Repr::kVec;
}

void PlanBuilder::AddStage(std::unique_ptr<FusedStage> stage) {
  stages_.push_back(std::move(stage));
}

void PlanBuilder::AddElidedStage(const char* label) {
  stages_.push_back(std::make_unique<ElidedStage>(label, repr_));
  ++compile_elided_;
}

// ---------------------------------------------------------------------------
// FusedPlan
// ---------------------------------------------------------------------------

std::shared_ptr<const FusedPlan> FusedPlan::Compile(
    const std::vector<std::unique_ptr<PipelineComponent>>& components,
    const Schema& entry_schema) {
  PlanBuilder builder(entry_schema);
  for (const auto& component : components) {
    if (!component->Fuse(&builder).ok()) return nullptr;
  }
  // The pipeline contract: the chain must end vectorized.  A chain that
  // does not is an interpreted-path error (FinishBatch reports it with the
  // full pipeline context), so decline rather than duplicate the message.
  if (builder.repr() != PlanBuilder::Repr::kVec) return nullptr;
  builder.AddStage(std::make_unique<EmitVecStage>());
  static std::atomic<uint64_t> next_serial{1};
  auto plan = std::shared_ptr<FusedPlan>(new FusedPlan());
  plan->serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
  plan->stages_ = std::move(builder.stages_);
  plan->stats_.fingerprint = SchemaFingerprint(entry_schema);
  plan->stats_.stages = plan->stages_.size();
  plan->stats_.compile_elided = builder.compile_elided_;
  return plan;
}

Status FusedPlan::Execute(const std::vector<std::string>& records,
                          size_t begin, size_t end, ExecScratch* scratch,
                          FeatureData* out, size_t* rows_scanned) const {
  ExecContext ctx;
  ctx.records = &records;
  ctx.begin = begin;
  ctx.end = end;
  ctx.scratch = scratch;
  ctx.out = out;
  ctx.plan_serial = serial_;
  for (const auto& stage : stages_) {
    CDPIPE_RETURN_NOT_OK(stage->Run(ctx));
  }
  CDPIPE_RETURN_NOT_OK(out->Validate());
  if (rows_scanned != nullptr) *rows_scanned += ctx.rows_scanned;
  if (ctx.stages_elided > 0) CountStagesElided(ctx.stages_elided);
  return Status::OK();
}

std::string FusedPlan::ToString() const {
  std::string out = StrFormat("FusedPlan[fp=%016llx]{",
                              static_cast<unsigned long long>(
                                  stats_.fingerprint));
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += stages_[i]->label();
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// ScratchPool
// ---------------------------------------------------------------------------

std::unique_ptr<ExecScratch> ScratchPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<ExecScratch> scratch = std::move(free_.back());
      free_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<ExecScratch>();
}

void ScratchPool::Release(std::unique_ptr<ExecScratch> scratch) {
  if (scratch == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(scratch));
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

std::shared_ptr<const FusedPlan> PlanCache::GetOrCompile(
    const std::vector<std::unique_ptr<PipelineComponent>>& components,
    const Schema& entry_schema, uint64_t version) {
  static obs::Counter* hit_counter = obs::MetricsRegistry::Global().GetCounter(
      "pipeline.plan_cache_hits", "Fused-plan cache hits");
  static obs::Counter* miss_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "pipeline.plan_cache_misses",
          "Fused-plan cache misses (compile or statistics invalidation)");
  static obs::Counter* plan_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "pipeline.fused_plans", "Fused plans compiled");

  const uint64_t fingerprint = SchemaFingerprint(entry_schema);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end() && it->second.version == version) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      hit_counter->Increment();
      return it->second.plan;
    }
  }
  // Compile outside the lock: compilation only reads component state, which
  // the caller keeps stable for the duration (the same contract concurrent
  // Transform calls already rely on).  A concurrent duplicate compile is
  // benign — last writer wins with an identical plan.
  misses_.fetch_add(1, std::memory_order_relaxed);
  miss_counter->Increment();
  std::shared_ptr<const FusedPlan> plan =
      FusedPlan::Compile(components, entry_schema);
  if (plan != nullptr) {
    compiles_.fetch_add(1, std::memory_order_relaxed);
    plan_counter->Increment();
    obs::EventJournal::Global().Append(
        obs::EventKind::kPlanCompile,
        StrFormat("fp=%016llx stages=%zu elided=%zu",
                  static_cast<unsigned long long>(plan->stats().fingerprint),
                  plan->stats().stages, plan->stats().compile_elided)
            .c_str());
  } else {
    obs::EventJournal::Global().Append(
        obs::EventKind::kPlanCompile,
        StrFormat("fp=%016llx unfusable",
                  static_cast<unsigned long long>(fingerprint))
            .c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_[fingerprint] = Entry{plan, version};
  return plan;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace fusion
}  // namespace cdpipe
