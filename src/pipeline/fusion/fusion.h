#ifndef CDPIPE_PIPELINE_FUSION_FUSION_H_
#define CDPIPE_PIPELINE_FUSION_FUSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {

class PipelineComponent;

/// Pipeline "compiler" (runtime specialization of the transform chain).
///
/// Given a deployed pipeline and the schema of the chunks it will see, the
/// planner asks every component to contribute a *block kernel* to a
/// FusedPlan: a short, pre-resolved program that takes a range of raw
/// records straight to FeatureData without materializing a TableData /
/// FeatureData between components.  Column dispatch (schema lookups, column
/// type resolution, statistics snapshots, dictionary pointers) happens once
/// at compile time instead of once per chunk per component; per-block state
/// lives in reusable per-thread scratch buffers.
///
/// Fused output is bit-identical to the interpreted path by construction:
/// every kernel either calls the exact same per-row helper the interpreted
/// kernel calls (parsers, taxi feature arithmetic) or replicates the
/// interpreted expression structure operation for operation (imputer,
/// scaler, hasher, filters, sinks).  The transform-equivalence golden suite
/// enforces this.
///
/// Planning is all-or-nothing: if any component declines to fuse (custom
/// components, unsupported configurations), the caller falls back to the
/// interpreted loop.  Plans are cached per (entry-schema fingerprint,
/// pipeline state version) and invalidated whenever component statistics
/// change (UpdateAndTransform / Reset / LoadState bump the version).
namespace fusion {

class PlanBuilder;

/// Order-sensitive fingerprint of (field name, field type) pairs — the plan
/// cache key component that captures "what shape of chunk does this plan
/// expect".  FNV-1a, stable across processes.
uint64_t SchemaFingerprint(const Schema& schema);

// ---------------------------------------------------------------------------
// Execution-time block state (lives in per-thread ExecScratch, reused
// across blocks and chunks; nothing here is shared between threads).
// ---------------------------------------------------------------------------

/// One column of a table block: flat typed storage plus a per-row null
/// byte mask.  The fused analogue of dataframe Column, without arenas or
/// ownership — string cells borrow the raw records, which outlive the
/// Transform call.
struct BlockColumn {
  ValueType type = ValueType::kNull;
  std::vector<double> d;
  std::vector<int64_t> i;
  std::vector<std::string_view> s;
  /// Parallel to rows; consulted only when `any_null`.
  std::vector<uint8_t> null;
  bool any_null = false;

  void Reset(ValueType t) {
    type = t;
    d.clear();
    i.clear();
    s.clear();
    null.clear();
    any_null = false;
  }

  bool IsNull(size_t r) const { return any_null && null[r] != 0; }

  /// Numeric cell with the same widening NumericColumnView applies.
  double NumericAt(size_t r) const {
    return type == ValueType::kDouble ? d[r] : static_cast<double>(i[r]);
  }

  /// Widens an integer/timestamp column to double in place — the block
  /// analogue of TableData::PromoteColumnToDouble (all rows convert, null
  /// placeholders included).
  void PromoteToDouble() {
    if (type == ValueType::kDouble) return;
    d.resize(i.size());
    for (size_t r = 0; r < i.size(); ++r) d[r] = static_cast<double>(i[r]);
    type = ValueType::kDouble;
  }
};

/// Table-state block: columns in plan-assigned physical slots plus a keep
/// mask.  Filters mark rows dead instead of materializing a filtered copy;
/// sinks emit live rows in ascending row order, which is exactly the order
/// a materialized Filter() would have produced.
struct TableBlock {
  size_t num_rows = 0;
  size_t live_rows = 0;
  std::vector<BlockColumn> cols;
  std::vector<uint8_t> keep;
};

/// Vector-state block: all rows' sparse entries concatenated, each row's
/// range collapsed (sorted, duplicate indices pre-summed — the exact
/// SparseVector::SortAndCombineInto preprocessing).
struct VecBlock {
  uint32_t dim = 0;
  std::vector<std::pair<uint32_t, double>> entries;
  /// Exclusive end offset of each row's entries.
  std::vector<uint32_t> row_end;
  std::vector<double> labels;
  /// True when any entry value is NaN — lets the imputer stage skip the
  /// whole block when there is nothing to fill.
  bool saw_nan = false;
  /// Rows whose entries contain at least one NaN (ascending; meaningful
  /// only while `saw_nan` is set).  The imputer rescans just these rows
  /// instead of the whole block.
  std::vector<uint32_t> nan_rows;

  size_t num_rows() const { return row_end.size(); }
};

/// Hash memo persisted across blocks, chunks, and plan recompiles: the
/// bucket/sign of a raw feature index depends only on the hasher's
/// immutable config, so the lazily filled array stays valid for the
/// lifetime of the scratch.  One packed word per raw index — set flag,
/// sign flag, bucket — so a lookup costs a single cache line, not three
/// (the memo is far larger than L1/L2 and lookups are random).
struct HasherMemo {
  static constexpr uint64_t kSet = uint64_t{1} << 63;
  static constexpr uint64_t kNegative = uint64_t{1} << 62;

  uint64_t seed = 0;
  uint32_t bits = 0;
  bool signed_hash = false;
  uint32_t dim = 0;
  std::vector<uint64_t> packed;

  bool Matches(uint64_t s, uint32_t b, bool sgn, uint32_t d) const {
    return !packed.empty() && seed == s && bits == b && signed_hash == sgn &&
           dim == d;
  }
};

/// Per-(component, plan) lazily filled statistics memo — mean/σ per key.
/// Unlike HasherMemo this caches *statistics-dependent* values, so it is
/// keyed by the owning component and the plan serial: any statistics
/// change produces a new plan (new serial) and implicitly invalidates it.
struct StatsMemo {
  /// One record per key so a lookup touches one cache line, not three.
  struct Entry {
    double mean = 0.0;
    double sd = 0.0;
    uint64_t seen = 0;
  };

  const void* owner = nullptr;
  uint64_t plan_serial = 0;
  std::vector<Entry> entries;
  /// σ-only variant for scalers that never subtract the mean (the sparse
  /// default): one double per dimension keeps the memo L1-sized at typical
  /// hashed dims.  -1 marks an unfilled cell (σ is never negative).
  std::vector<double> sd;

  bool Matches(const void* o, uint64_t serial, size_t dim) const {
    return owner == o && plan_serial == serial && entries.size() == dim;
  }
  bool MatchesSd(const void* o, uint64_t serial, size_t dim) const {
    return owner == o && plan_serial == serial && sd.size() == dim;
  }
};

/// Per-thread execution scratch.  Acquired from a ScratchPool for the
/// duration of one block; buffers keep their capacity between blocks.
struct ExecScratch {
  VecBlock vec;
  TableBlock table;
  HasherMemo hasher_memo;
  StatsMemo scaler_memo;
  // Reusable small buffers for per-row work.
  std::vector<std::string_view> tokens;
  std::vector<std::pair<uint32_t, double>> row_entries;
  std::vector<std::pair<uint32_t, double>> out_entries;
  std::vector<double> acc;
  std::vector<uint64_t> occupied;
  std::vector<uint64_t> summary;
  /// Buckets that received a two-way collision in the current row (the
  /// hasher's dense path sums pairs in place; a third hit forces the
  /// sorted fallback).
  std::vector<uint32_t> collided;
  std::vector<uint8_t> flags;
};

/// Everything a stage needs while processing one block.
struct ExecContext {
  const std::vector<std::string>* records = nullptr;
  size_t begin = 0;
  size_t end = 0;
  ExecScratch* scratch = nullptr;
  FeatureData* out = nullptr;
  /// Serial of the executing plan (see FusedPlan::serial).
  uint64_t plan_serial = 0;
  /// (row x component) scans, accumulated with the same multiplicities as
  /// the interpreted loop so the cost model sees identical work counts.
  size_t rows_scanned = 0;
  /// Stages that did provably no per-row work on this block.
  size_t stages_elided = 0;

  size_t raw_rows() const { return end - begin; }
};

/// One compiled stage.  Immutable after compile; Run only mutates the
/// per-thread state reachable through `ctx`.
class FusedStage {
 public:
  virtual ~FusedStage() = default;
  virtual const char* label() const = 0;
  virtual Status Run(ExecContext& ctx) const = 0;
};

// ---------------------------------------------------------------------------
// Compile-time planning
// ---------------------------------------------------------------------------

/// Builder each component's Fuse() contributes to.  Tracks the simulated
/// batch representation (raw records -> table -> vector -> done) and the
/// logical schema, so downstream components resolve columns at compile
/// time.  A component that cannot express itself as a block kernel simply
/// returns a non-OK status from Fuse(); the planner then abandons the plan.
class PlanBuilder {
 public:
  enum class Repr { kRaw, kTable, kVec };

  explicit PlanBuilder(const Schema& entry_schema)
      : entry_schema_(&entry_schema) {}

  Repr repr() const { return repr_; }
  const Schema& entry_schema() const { return *entry_schema_; }

  // --- table state ---
  /// Logical schema of the simulated table (valid when repr()==kTable).
  const Schema& schema() const { return *schema_; }
  /// Physical slot of a logical field, or NotFound.
  Result<size_t> SlotOf(const std::string& field) const;
  ValueType SlotDeclaredType(size_t slot) const { return slot_types_[slot]; }
  /// Appends a field to the logical schema, returning its new slot.
  Result<size_t> AddSlot(const Field& field);
  /// Reorders/restricts the logical schema to `fields` (column projection).
  /// Physical slots are untouched — projection is free at runtime.
  Status Project(const std::vector<std::string>& fields);
  size_t num_slots() const { return slot_types_.size(); }

  // --- representation transitions ---
  Status BeginTable(std::shared_ptr<const Schema> schema);
  void BeginVec(uint32_t dim);
  uint32_t vec_dim() const { return vec_dim_; }

  void AddStage(std::unique_ptr<FusedStage> stage);
  /// Accounting-only stage: counts its scan and one elision per block, does
  /// no per-row work.  Used for provably no-op components (identity
  /// projections, statistics-free scalers).
  void AddElidedStage(const char* label);

 private:
  friend class FusedPlan;

  const Schema* entry_schema_;
  Repr repr_ = Repr::kRaw;
  std::shared_ptr<const Schema> schema_;
  /// Logical field index -> physical slot.
  std::vector<size_t> slot_of_field_;
  /// Physical slot -> declared type (as produced by the parser / deriver;
  /// runtime promotions are tracked per block in BlockColumn::type).
  std::vector<ValueType> slot_types_;
  uint32_t vec_dim_ = 0;
  std::vector<std::unique_ptr<FusedStage>> stages_;
  size_t compile_elided_ = 0;
};

/// A compiled, immutable, thread-safe execution plan for one pipeline and
/// one entry schema at one statistics version.
class FusedPlan {
 public:
  struct Stats {
    uint64_t fingerprint = 0;
    size_t stages = 0;
    size_t compile_elided = 0;
  };

  /// Compiles `components` against `entry_schema`.  Returns nullptr when
  /// any component declines fusion or the chain does not end vectorized —
  /// never an error; the caller falls back to the interpreted loop.
  static std::shared_ptr<const FusedPlan> Compile(
      const std::vector<std::unique_ptr<PipelineComponent>>& components,
      const Schema& entry_schema);

  /// Processes records [begin, end) through every stage into `*out`.
  /// `scratch` must be exclusively owned by the caller for the duration.
  Status Execute(const std::vector<std::string>& records, size_t begin,
                 size_t end, ExecScratch* scratch, FeatureData* out,
                 size_t* rows_scanned) const;

  const Stats& stats() const { return stats_; }

  /// Process-unique, monotonically assigned at compile time.  Scratch
  /// memos of statistics-dependent values key on this: a recompile (after
  /// any statistics change) yields a new serial, never a reused one.
  uint64_t serial() const { return serial_; }

  std::string ToString() const;

 private:
  FusedPlan() = default;

  std::vector<std::unique_ptr<FusedStage>> stages_;
  Stats stats_;
  uint64_t serial_ = 0;
};

/// Free list of ExecScratch buffers shared by the (few) concurrent
/// transform shards of one pipeline.  Scratches survive plan recompiles —
/// only configuration-keyed memos (hasher buckets) persist across plans,
/// never statistics.
class ScratchPool {
 public:
  std::unique_ptr<ExecScratch> Acquire();
  void Release(std::unique_ptr<ExecScratch> scratch);

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<ExecScratch>> free_;
};

/// RAII lease on a pool scratch.
class ScratchLease {
 public:
  explicit ScratchLease(ScratchPool* pool)
      : pool_(pool), scratch_(pool->Acquire()) {}
  ~ScratchLease() { pool_->Release(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  ExecScratch* get() { return scratch_.get(); }

 private:
  ScratchPool* pool_;
  std::unique_ptr<ExecScratch> scratch_;
};

/// Plan cache keyed by entry-schema fingerprint, validated against the
/// pipeline's statistics version.  Unfusable outcomes are cached too, so a
/// pipeline with a custom component does not re-attempt compilation every
/// chunk.  Thread-safe: Transform runs concurrently on engine workers.
class PlanCache {
 public:
  /// The cached plan for (entry schema, version), compiling on miss or
  /// version change.  nullptr when the pipeline cannot be fused.
  std::shared_ptr<const FusedPlan> GetOrCompile(
      const std::vector<std::unique_ptr<PipelineComponent>>& components,
      const Schema& entry_schema, uint64_t version);

  void Clear();

  // Introspection (tests / reports); process-wide counterparts live in the
  // metrics registry as pipeline.plan_cache_hits / _misses /
  // pipeline.fused_plans.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t compiles() const {
    return compiles_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const FusedPlan> plan;  // nullptr => known unfusable
    uint64_t version = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> compiles_{0};
};

/// Adds `n` to the process-wide pipeline.stages_elided counter (called once
/// per executed block, not per stage).
void CountStagesElided(size_t n);

}  // namespace fusion
}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_FUSION_FUSION_H_
