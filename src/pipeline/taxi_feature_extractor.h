#ifndef CDPIPE_PIPELINE_TAXI_FEATURE_EXTRACTOR_H_
#define CDPIPE_PIPELINE_TAXI_FEATURE_EXTRACTOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Haversine distance in kilometers between two (lat, lon) points given in
/// degrees.
double HaversineKm(double lat1, double lon1, double lat2, double lon2);

/// Initial bearing in degrees [0, 360) from point 1 to point 2.
double BearingDegrees(double lat1, double lon1, double lat2, double lon2);

/// The eight derived per-trip features, in output column order.
struct TaxiDerivedRow {
  double duration_s;
  double haversine_km;
  double bearing;
  double hour_of_day;
  double hour_sin;
  double hour_cos;
  double day_of_week;
  double log_duration;
};

/// Computes the derived features for one trip.  Deliberately out-of-line:
/// the interpreted and fused execution paths both call this single
/// definition, so the two modes produce bit-identical doubles.
TaxiDerivedRow DeriveTaxiRow(int64_t pickup_seconds, int64_t dropoff_seconds,
                             double pickup_lat, double pickup_lon,
                             double dropoff_lat, double dropoff_lon);

/// The Taxi pipeline's feature extractor (paper §5.1), modeled after the top
/// NYC-Taxi-Duration Kaggle solutions: from pickup/dropoff timestamps and
/// coordinates it derives
///
///   - `duration_s`    — actual trip duration in seconds (the target; the
///                       paper folds this into the input parser, we keep the
///                       parser format-generic and compute it here with the
///                       same arithmetic),
///   - `haversine_km`  — great-circle trip distance,
///   - `bearing`       — initial bearing in degrees,
///   - `hour_of_day`   — pickup hour, 0-23,
///   - `hour_sin`, `hour_cos` — the pickup hour on the 24h circle, so a
///                       linear model can express the daily traffic cycle,
///   - `day_of_week`   — pickup weekday, 0=Monday .. 6=Sunday,
///   - `log_duration`  — log1p(duration_s), the regression target under the
///                       RMSLE metric.
///
/// Stateless feature extraction (Table 1): new columns, linear output size.
class TaxiFeatureExtractor : public PipelineComponent {
 public:
  struct Options {
    std::string pickup_datetime_column = "pickup_datetime";
    std::string dropoff_datetime_column = "dropoff_datetime";
    std::string pickup_lat_column = "pickup_lat";
    std::string pickup_lon_column = "pickup_lon";
    std::string dropoff_lat_column = "dropoff_lat";
    std::string dropoff_lon_column = "dropoff_lon";
  };

  TaxiFeatureExtractor() : TaxiFeatureExtractor(Options()) {}
  explicit TaxiFeatureExtractor(Options options);

  std::string name() const override { return "taxi_feature_extractor"; }
  ComponentKind kind() const override {
    return ComponentKind::kFeatureExtraction;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

 private:
  Options options_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_TAXI_FEATURE_EXTRACTOR_H_
