#ifndef CDPIPE_PIPELINE_MISSING_VALUE_IMPUTER_H_
#define CDPIPE_PIPELINE_MISSING_VALUE_IMPUTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Replaces missing values with the running mean of the observed values —
/// per feature dimension for vectorized batches (NaN entries), per column
/// for table batches (null cells).
///
/// The mean is an incrementally maintainable statistic, so this component
/// participates in online statistics computation (§3.1): `Update` folds each
/// arriving chunk into per-dimension (count, sum) accumulators and
/// `Transform` reads them without rescanning history.
class MissingValueImputer : public PipelineComponent {
 public:
  struct Options {
    /// Table mode: columns to impute.  Ignored for feature batches.
    std::vector<std::string> columns;
    /// Value used when a dimension has never been observed.
    double default_value = 0.0;
  };

  MissingValueImputer() : MissingValueImputer(Options()) {}
  explicit MissingValueImputer(Options options);

  std::string name() const override { return "missing_value_imputer"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }
  bool is_stateful() const override { return true; }

  Status Update(const DataBatch& batch) override;
  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Result<DataBatch> TransformOwned(DataBatch&& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  void Reset() override;
  std::unique_ptr<PipelineComponent> Clone() const override;
  std::string DescribeState() const override;
  Status SaveState(Serializer* out) const override;
  Status LoadState(Deserializer* in) override;

  /// Current imputation value for a feature dimension / column index.
  double MeanForDimension(uint32_t dim) const;

 private:
  struct RunningMean {
    int64_t count = 0;
    double sum = 0.0;
    double Mean(double fallback) const {
      return count > 0 ? sum / static_cast<double>(count) : fallback;
    }
  };

  /// Shared kernel for Transform/TransformOwned: fills nulls in `*table`
  /// in place, widening integer columns to double first.
  Status ImputeTable(TableData* table) const;
  void ImputeFeatures(FeatureData* features) const;

  Options options_;
  /// Feature mode: keyed by feature index.  Table mode: keyed by the index
  /// of the column within `options_.columns`.
  std::unordered_map<uint32_t, RunningMean> stats_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_MISSING_VALUE_IMPUTER_H_
