#include "src/pipeline/standard_scaler.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/common/string_util.h"

namespace cdpipe {
namespace {
constexpr double kMinStdDev = 1e-12;
}  // namespace

StandardScaler::StandardScaler(Options options)
    : options_(std::move(options)) {}

Status StandardScaler::Update(const DataBatch& batch) {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    total_rows_ += static_cast<int64_t>(features->num_rows());
    for (const SparseVector& x : features->features) {
      const auto& idx = x.indices();
      const auto& val = x.values();
      for (size_t k = 0; k < idx.size(); ++k) {
        if (std::isnan(val[k])) continue;  // imputation happens upstream
        Moments& m = stats_[idx[k]];
        m.sum += val[k];
        m.sum_squares += val[k] * val[k];
      }
    }
    return Status::OK();
  }
  const auto& table = std::get<TableData>(batch);
  table_mode_seen_ = true;
  total_rows_ += static_cast<int64_t>(table.num_rows());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table.schema->FieldIndex(options_.columns[c]));
    Moments& m = stats_[static_cast<uint32_t>(c)];
    int64_t& count = column_counts_[static_cast<uint32_t>(c)];
    for (const Row& row : table.rows) {
      const Value& v = row[col];
      if (v.is_null()) continue;
      Result<double> d = v.AsDouble();
      if (!d.ok()) {
        return Status::FailedPrecondition("cannot scale non-numeric column " +
                                          options_.columns[c]);
      }
      m.sum += *d;
      m.sum_squares += *d * *d;
      ++count;
    }
  }
  return Status::OK();
}

double StandardScaler::MeanOf(uint32_t key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  int64_t n = total_rows_;
  if (table_mode_seen_) {
    auto cit = column_counts_.find(key);
    n = cit != column_counts_.end() ? cit->second : 0;
  }
  if (n <= 0) return 0.0;
  return it->second.sum / static_cast<double>(n);
}

double StandardScaler::VarianceOf(uint32_t key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  int64_t n = total_rows_;
  if (table_mode_seen_) {
    auto cit = column_counts_.find(key);
    n = cit != column_counts_.end() ? cit->second : 0;
  }
  if (n <= 0) return 0.0;
  const double mean = it->second.sum / static_cast<double>(n);
  const double var =
      it->second.sum_squares / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? var : 0.0;
}

double StandardScaler::StdDevOf(uint32_t key) const {
  return std::sqrt(VarianceOf(key));
}

Result<DataBatch> StandardScaler::Transform(const DataBatch& batch) const {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    FeatureData out = *features;
    for (SparseVector& x : out.features) {
      x.TransformValues([this](uint32_t index, double value) {
        const double sd = StdDevOf(index);
        const double centered =
            options_.with_mean ? value - MeanOf(index) : value;
        return sd > kMinStdDev ? centered / sd : centered;
      });
    }
    return DataBatch(std::move(out));
  }
  const auto& table = std::get<TableData>(batch);
  TableData out = table;
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            out.schema->FieldIndex(options_.columns[c]));
    const uint32_t key = static_cast<uint32_t>(c);
    const double mean = MeanOf(key);
    const double sd = StdDevOf(key);
    for (Row& row : out.rows) {
      Value& v = row[col];
      if (v.is_null()) continue;
      CDPIPE_ASSIGN_OR_RETURN(double d, v.AsDouble());
      const double scaled = sd > kMinStdDev ? (d - mean) / sd : d - mean;
      v = Value::Double(scaled);
    }
  }
  return DataBatch(std::move(out));
}

void StandardScaler::Reset() {
  stats_.clear();
  column_counts_.clear();
  total_rows_ = 0;
  table_mode_seen_ = false;
}

std::unique_ptr<PipelineComponent> StandardScaler::Clone() const {
  auto out = std::make_unique<StandardScaler>(options_);
  out->total_rows_ = total_rows_;
  out->stats_ = stats_;
  out->column_counts_ = column_counts_;
  out->table_mode_seen_ = table_mode_seen_;
  return out;
}

Status StandardScaler::SaveState(Serializer* out) const {
  out->WriteInt("scaler.total_rows", total_rows_);
  out->WriteInt("scaler.table_mode", table_mode_seen_ ? 1 : 0);
  std::vector<std::pair<uint32_t, Moments>> sorted(stats_.begin(),
                                                   stats_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> keys;
  std::vector<double> sums;
  std::vector<double> sum_squares;
  for (const auto& [key, m] : sorted) {
    keys.push_back(key);
    sums.push_back(m.sum);
    sum_squares.push_back(m.sum_squares);
  }
  out->WriteUint32Vector("scaler.keys", keys);
  out->WriteDoubleVector("scaler.sums", sums);
  out->WriteDoubleVector("scaler.sum_squares", sum_squares);
  std::vector<std::pair<uint32_t, double>> counts;
  for (const auto& [key, count] : column_counts_) {
    counts.emplace_back(key, static_cast<double>(count));
  }
  std::sort(counts.begin(), counts.end());
  out->WritePairs("scaler.column_counts", counts);
  return Status::OK();
}

Status StandardScaler::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(total_rows_, in->ReadInt("scaler.total_rows"));
  CDPIPE_ASSIGN_OR_RETURN(int64_t table_mode,
                          in->ReadInt("scaler.table_mode"));
  table_mode_seen_ = table_mode != 0;
  CDPIPE_ASSIGN_OR_RETURN(auto keys, in->ReadUint32Vector("scaler.keys"));
  CDPIPE_ASSIGN_OR_RETURN(auto sums, in->ReadDoubleVector("scaler.sums"));
  CDPIPE_ASSIGN_OR_RETURN(auto sum_squares,
                          in->ReadDoubleVector("scaler.sum_squares"));
  if (keys.size() != sums.size() || keys.size() != sum_squares.size()) {
    return Status::InvalidArgument("scaler state arrays misaligned");
  }
  stats_.clear();
  for (size_t i = 0; i < keys.size(); ++i) {
    stats_[keys[i]] = Moments{sums[i], sum_squares[i]};
  }
  CDPIPE_ASSIGN_OR_RETURN(auto counts, in->ReadPairs("scaler.column_counts"));
  column_counts_.clear();
  for (const auto& [key, count] : counts) {
    column_counts_[key] = static_cast<int64_t>(count);
  }
  return Status::OK();
}

std::string StandardScaler::DescribeState() const {
  return StrFormat("moments for %zu dimensions over %lld rows", stats_.size(),
                   static_cast<long long>(total_rows_));
}

}  // namespace cdpipe
