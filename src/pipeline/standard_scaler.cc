#include "src/pipeline/standard_scaler.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"

namespace cdpipe {
namespace {
constexpr double kMinStdDev = 1e-12;
}  // namespace

StandardScaler::StandardScaler(Options options)
    : options_(std::move(options)) {}

Status StandardScaler::Update(const DataBatch& batch) {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    total_rows_ += static_cast<int64_t>(features->num_rows());
    for (const SparseVector& x : features->features) {
      const auto& idx = x.indices();
      const auto& val = x.values();
      for (size_t k = 0; k < idx.size(); ++k) {
        if (std::isnan(val[k])) continue;  // imputation happens upstream
        Moments& m = stats_[idx[k]];
        m.sum += val[k];
        m.sum_squares += val[k] * val[k];
      }
    }
    return Status::OK();
  }
  const auto& table = std::get<TableData>(batch);
  table_mode_seen_ = true;
  total_rows_ += static_cast<int64_t>(table.num_rows());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table.schema()->FieldIndex(options_.columns[c]));
    const Column& column = table.column(col);
    Result<NumericColumnView> view = NumericColumnView::Of(column, "");
    if (!view.ok()) {
      return Status::FailedPrecondition("cannot scale non-numeric column " +
                                        options_.columns[c]);
    }
    Moments& m = stats_[static_cast<uint32_t>(c)];
    int64_t& count = column_counts_[static_cast<uint32_t>(c)];
    const size_t rows = column.size();
    if (!column.has_nulls()) {
      for (size_t r = 0; r < rows; ++r) {
        const double d = (*view)[r];
        m.sum += d;
        m.sum_squares += d * d;
      }
      count += static_cast<int64_t>(rows);
    } else {
      for (size_t r = 0; r < rows; ++r) {
        if (view->IsNull(r)) continue;
        const double d = (*view)[r];
        m.sum += d;
        m.sum_squares += d * d;
        ++count;
      }
    }
  }
  return Status::OK();
}

double StandardScaler::MeanOf(uint32_t key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  int64_t n = total_rows_;
  if (table_mode_seen_) {
    auto cit = column_counts_.find(key);
    n = cit != column_counts_.end() ? cit->second : 0;
  }
  if (n <= 0) return 0.0;
  return it->second.sum / static_cast<double>(n);
}

double StandardScaler::VarianceOf(uint32_t key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  int64_t n = total_rows_;
  if (table_mode_seen_) {
    auto cit = column_counts_.find(key);
    n = cit != column_counts_.end() ? cit->second : 0;
  }
  if (n <= 0) return 0.0;
  const double mean = it->second.sum / static_cast<double>(n);
  const double var =
      it->second.sum_squares / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? var : 0.0;
}

double StandardScaler::StdDevOf(uint32_t key) const {
  return std::sqrt(VarianceOf(key));
}

Result<DataBatch> StandardScaler::Transform(const DataBatch& batch) const {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    FeatureData out = *features;
    ScaleFeatures(&out);
    return DataBatch(std::move(out));
  }
  TableData out = std::get<TableData>(batch);
  CDPIPE_RETURN_NOT_OK(ScaleTable(&out));
  return DataBatch(std::move(out));
}

Result<DataBatch> StandardScaler::TransformOwned(DataBatch&& batch) const {
  if (auto* features = std::get_if<FeatureData>(&batch)) {
    ScaleFeatures(features);
    return std::move(batch);
  }
  CDPIPE_RETURN_NOT_OK(ScaleTable(&std::get<TableData>(batch)));
  return std::move(batch);
}

void StandardScaler::ScaleFeatures(FeatureData* features) const {
  const uint32_t dim = features->dim;
  size_t total_nnz = 0;
  for (const SparseVector& x : features->features) total_nnz += x.nnz();
  // Per-batch memo of (mean, stddev) per feature index: indices repeat
  // heavily across rows, and the per-value map lookups plus sqrt dominate
  // the scaling cost.  The per-value arithmetic is unchanged, so outputs
  // are bit-identical to the unmemoized path.
  if (dim <= (1u << 20) && total_nnz >= dim / 16) {
    std::vector<uint8_t> seen(dim, 0);
    std::unique_ptr<double[]> mean(new double[dim]);
    std::unique_ptr<double[]> sd(new double[dim]);
    for (SparseVector& x : features->features) {
      x.TransformValues([&](uint32_t index, double value) {
        if (!seen[index]) {
          seen[index] = 1;
          mean[index] = options_.with_mean ? MeanOf(index) : 0.0;
          sd[index] = StdDevOf(index);
        }
        const double centered =
            options_.with_mean ? value - mean[index] : value;
        return sd[index] > kMinStdDev ? centered / sd[index] : centered;
      });
    }
    return;
  }
  for (SparseVector& x : features->features) {
    x.TransformValues([this](uint32_t index, double value) {
      const double sd = StdDevOf(index);
      const double centered = options_.with_mean ? value - MeanOf(index) : value;
      return sd > kMinStdDev ? centered / sd : centered;
    });
  }
}

Status StandardScaler::ScaleTable(TableData* table) const {
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table->schema()->FieldIndex(options_.columns[c]));
    const uint32_t key = static_cast<uint32_t>(c);
    const double mean = MeanOf(key);
    const double sd = StdDevOf(key);
    // Scaled cells are fractional, so integer columns widen to double —
    // the same static_cast the row path applied through Value::AsDouble.
    if (table->column(col).type() != ValueType::kDouble) {
      CDPIPE_RETURN_NOT_OK(table->PromoteColumnToDouble(col));
    }
    Column& column = table->mutable_column(col);
    std::vector<double>& cells = column.mutable_doubles();
    const size_t rows = cells.size();
    // Division is kept per-cell ((d - mean) / sd, not a precomputed
    // reciprocal) so results are bit-identical to the row path.
    if (sd > kMinStdDev) {
      if (!column.has_nulls()) {
        for (size_t r = 0; r < rows; ++r) cells[r] = (cells[r] - mean) / sd;
      } else {
        for (size_t r = 0; r < rows; ++r) {
          if (column.IsNull(r)) continue;
          cells[r] = (cells[r] - mean) / sd;
        }
      }
    } else {
      if (!column.has_nulls()) {
        for (size_t r = 0; r < rows; ++r) cells[r] = cells[r] - mean;
      } else {
        for (size_t r = 0; r < rows; ++r) {
          if (column.IsNull(r)) continue;
          cells[r] = cells[r] - mean;
        }
      }
    }
  }
  return Status::OK();
}

void StandardScaler::Reset() {
  stats_.clear();
  column_counts_.clear();
  total_rows_ = 0;
  table_mode_seen_ = false;
}

std::unique_ptr<PipelineComponent> StandardScaler::Clone() const {
  auto out = std::make_unique<StandardScaler>(options_);
  out->total_rows_ = total_rows_;
  out->stats_ = stats_;
  out->column_counts_ = column_counts_;
  out->table_mode_seen_ = table_mode_seen_;
  return out;
}

Status StandardScaler::SaveState(Serializer* out) const {
  out->WriteInt("scaler.total_rows", total_rows_);
  out->WriteInt("scaler.table_mode", table_mode_seen_ ? 1 : 0);
  std::vector<std::pair<uint32_t, Moments>> sorted(stats_.begin(),
                                                   stats_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> keys;
  std::vector<double> sums;
  std::vector<double> sum_squares;
  for (const auto& [key, m] : sorted) {
    keys.push_back(key);
    sums.push_back(m.sum);
    sum_squares.push_back(m.sum_squares);
  }
  out->WriteUint32Vector("scaler.keys", keys);
  out->WriteDoubleVector("scaler.sums", sums);
  out->WriteDoubleVector("scaler.sum_squares", sum_squares);
  std::vector<std::pair<uint32_t, double>> counts;
  for (const auto& [key, count] : column_counts_) {
    counts.emplace_back(key, static_cast<double>(count));
  }
  std::sort(counts.begin(), counts.end());
  out->WritePairs("scaler.column_counts", counts);
  return Status::OK();
}

Status StandardScaler::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(total_rows_, in->ReadInt("scaler.total_rows"));
  CDPIPE_ASSIGN_OR_RETURN(int64_t table_mode,
                          in->ReadInt("scaler.table_mode"));
  table_mode_seen_ = table_mode != 0;
  CDPIPE_ASSIGN_OR_RETURN(auto keys, in->ReadUint32Vector("scaler.keys"));
  CDPIPE_ASSIGN_OR_RETURN(auto sums, in->ReadDoubleVector("scaler.sums"));
  CDPIPE_ASSIGN_OR_RETURN(auto sum_squares,
                          in->ReadDoubleVector("scaler.sum_squares"));
  if (keys.size() != sums.size() || keys.size() != sum_squares.size()) {
    return Status::InvalidArgument("scaler state arrays misaligned");
  }
  stats_.clear();
  for (size_t i = 0; i < keys.size(); ++i) {
    stats_[keys[i]] = Moments{sums[i], sum_squares[i]};
  }
  CDPIPE_ASSIGN_OR_RETURN(auto counts, in->ReadPairs("scaler.column_counts"));
  column_counts_.clear();
  for (const auto& [key, count] : counts) {
    column_counts_[key] = static_cast<int64_t>(count);
  }
  return Status::OK();
}

std::string StandardScaler::DescribeState() const {
  return StrFormat("moments for %zu dimensions over %lld rows", stats_.size(),
                   static_cast<long long>(total_rows_));
}

}  // namespace cdpipe
