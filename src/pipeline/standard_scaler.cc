#include "src/pipeline/standard_scaler.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {
namespace {

constexpr double kMinStdDev = StandardScaler::kMinStdDev;

/// Fused feature-mode kernel.  The (mean, σ) memo lives in the per-thread
/// scratch, keyed by (scaler, plan serial): it persists across blocks for
/// the lifetime of one plan — statistics changes recompile the plan with a
/// fresh serial, which invalidates it.  Arithmetic is exactly the
/// interpreted path's, so outputs are bit-identical.
class ScaleVecStage final : public fusion::FusedStage {
 public:
  ScaleVecStage(const StandardScaler* scaler, bool with_mean)
      : scaler_(scaler), with_mean_(with_mean) {}

  const char* label() const override { return "standard_scaler"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::VecBlock& vec = ctx.scratch->vec;
    ctx.rows_scanned += vec.num_rows();
    const uint32_t dim = vec.dim;
    if (dim <= (1u << 20)) {
      fusion::StatsMemo& memo = ctx.scratch->scaler_memo;
      if (!with_mean_) {
        // σ-only memo: 8 bytes per dimension keeps the random lookups
        // L1-resident at typical hashed dims (σ alone decides the scale
        // when the mean is not subtracted).
        if (!memo.MatchesSd(scaler_, ctx.plan_serial, dim)) {
          memo.owner = scaler_;
          memo.plan_serial = ctx.plan_serial;
          memo.entries.clear();
          memo.sd.assign(dim, -1.0);
        }
        for (auto& entry : vec.entries) {
          double sd = memo.sd[entry.first];
          if (sd < 0.0) {
            sd = scaler_->StdDevOf(entry.first);
            memo.sd[entry.first] = sd;
          }
          if (sd > kMinStdDev) entry.second = entry.second / sd;
        }
        return Status::OK();
      }
      if (!memo.Matches(scaler_, ctx.plan_serial, dim)) {
        memo.owner = scaler_;
        memo.plan_serial = ctx.plan_serial;
        memo.sd.clear();
        memo.entries.assign(dim, fusion::StatsMemo::Entry{});
      }
      for (auto& entry : vec.entries) {
        fusion::StatsMemo::Entry& m = memo.entries[entry.first];
        if (!m.seen) {
          m.seen = 1;
          m.mean = scaler_->MeanOf(entry.first);
          m.sd = scaler_->StdDevOf(entry.first);
        }
        const double centered = entry.second - m.mean;
        entry.second = m.sd > kMinStdDev ? centered / m.sd : centered;
      }
      return Status::OK();
    }
    for (auto& entry : vec.entries) {
      const double sd = scaler_->StdDevOf(entry.first);
      const double centered =
          with_mean_ ? entry.second - scaler_->MeanOf(entry.first)
                     : entry.second;
      entry.second = sd > kMinStdDev ? centered / sd : centered;
    }
    return Status::OK();
  }

 private:
  const StandardScaler* scaler_;
  bool with_mean_;
};

/// Fused table-mode kernel.  (mean, σ) per configured column are
/// snapshotted at plan-compile time — valid for the plan's lifetime by the
/// same invalidation argument as above.  Division stays per-cell and dead
/// (filtered) rows are scaled harmlessly: their cells are never read.
class ScaleTableStage final : public fusion::FusedStage {
 public:
  struct ColScale {
    size_t slot;
    double mean;
    double sd;
  };

  explicit ScaleTableStage(std::vector<ColScale> cols)
      : cols_(std::move(cols)) {}

  const char* label() const override { return "standard_scaler"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    ctx.rows_scanned += table.live_rows;
    for (const ColScale& cs : cols_) {
      fusion::BlockColumn& col = table.cols[cs.slot];
      col.PromoteToDouble();
      const size_t rows = col.d.size();
      if (cs.sd > kMinStdDev) {
        if (!col.any_null) {
          for (size_t r = 0; r < rows; ++r) {
            col.d[r] = (col.d[r] - cs.mean) / cs.sd;
          }
        } else {
          for (size_t r = 0; r < rows; ++r) {
            if (col.null[r]) continue;
            col.d[r] = (col.d[r] - cs.mean) / cs.sd;
          }
        }
      } else {
        if (!col.any_null) {
          for (size_t r = 0; r < rows; ++r) col.d[r] = col.d[r] - cs.mean;
        } else {
          for (size_t r = 0; r < rows; ++r) {
            if (col.null[r]) continue;
            col.d[r] = col.d[r] - cs.mean;
          }
        }
      }
    }
    return Status::OK();
  }

 private:
  std::vector<ColScale> cols_;
};

}  // namespace

StandardScaler::StandardScaler(Options options)
    : options_(std::move(options)) {}

Status StandardScaler::Update(const DataBatch& batch) {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    total_rows_ += static_cast<int64_t>(features->num_rows());
    for (const SparseVector& x : features->features) {
      const auto& idx = x.indices();
      const auto& val = x.values();
      for (size_t k = 0; k < idx.size(); ++k) {
        if (std::isnan(val[k])) continue;  // imputation happens upstream
        Moments& m = stats_[idx[k]];
        m.sum += val[k];
        m.sum_squares += val[k] * val[k];
      }
    }
    return Status::OK();
  }
  const auto& table = std::get<TableData>(batch);
  table_mode_seen_ = true;
  total_rows_ += static_cast<int64_t>(table.num_rows());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table.schema()->FieldIndex(options_.columns[c]));
    const Column& column = table.column(col);
    Result<NumericColumnView> view = NumericColumnView::Of(column, "");
    if (!view.ok()) {
      return Status::FailedPrecondition("cannot scale non-numeric column " +
                                        options_.columns[c]);
    }
    Moments& m = stats_[static_cast<uint32_t>(c)];
    int64_t& count = column_counts_[static_cast<uint32_t>(c)];
    const size_t rows = column.size();
    if (!column.has_nulls()) {
      for (size_t r = 0; r < rows; ++r) {
        const double d = (*view)[r];
        m.sum += d;
        m.sum_squares += d * d;
      }
      count += static_cast<int64_t>(rows);
    } else {
      for (size_t r = 0; r < rows; ++r) {
        if (view->IsNull(r)) continue;
        const double d = (*view)[r];
        m.sum += d;
        m.sum_squares += d * d;
        ++count;
      }
    }
  }
  return Status::OK();
}

double StandardScaler::MeanOf(uint32_t key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  int64_t n = total_rows_;
  if (table_mode_seen_) {
    auto cit = column_counts_.find(key);
    n = cit != column_counts_.end() ? cit->second : 0;
  }
  if (n <= 0) return 0.0;
  return it->second.sum / static_cast<double>(n);
}

double StandardScaler::VarianceOf(uint32_t key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  int64_t n = total_rows_;
  if (table_mode_seen_) {
    auto cit = column_counts_.find(key);
    n = cit != column_counts_.end() ? cit->second : 0;
  }
  if (n <= 0) return 0.0;
  const double mean = it->second.sum / static_cast<double>(n);
  const double var =
      it->second.sum_squares / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? var : 0.0;
}

double StandardScaler::StdDevOf(uint32_t key) const {
  return std::sqrt(VarianceOf(key));
}

Result<DataBatch> StandardScaler::Transform(const DataBatch& batch) const {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    FeatureData out = *features;
    ScaleFeatures(&out);
    return DataBatch(std::move(out));
  }
  TableData out = std::get<TableData>(batch);
  CDPIPE_RETURN_NOT_OK(ScaleTable(&out));
  return DataBatch(std::move(out));
}

Result<DataBatch> StandardScaler::TransformOwned(DataBatch&& batch) const {
  if (auto* features = std::get_if<FeatureData>(&batch)) {
    ScaleFeatures(features);
    return std::move(batch);
  }
  CDPIPE_RETURN_NOT_OK(ScaleTable(&std::get<TableData>(batch)));
  return std::move(batch);
}

Status StandardScaler::Fuse(fusion::PlanBuilder* plan) const {
  using Repr = fusion::PlanBuilder::Repr;
  // With no moments accumulated yet, MeanOf/StdDevOf return 0.0 for every
  // key: centered = x - 0.0 ≡ x bitwise (including -0.0 and NaN) and σ=0
  // skips the division, so the whole stage is an identity and is elided.
  // (In table mode the interpreted path still widens integer columns to
  // double; downstream fused stages read cells numerically, so the final
  // feature output is unaffected.)
  if (plan->repr() == Repr::kVec) {
    if (stats_.empty()) {
      plan->AddElidedStage("standard_scaler");
    } else {
      plan->AddStage(std::make_unique<ScaleVecStage>(this, options_.with_mean));
    }
    return Status::OK();
  }
  if (plan->repr() != Repr::kTable) {
    return Status::FailedPrecondition(
        "scaler fuses only over a table or vectorized block");
  }
  if (options_.columns.empty() || stats_.empty()) {
    plan->AddElidedStage("standard_scaler");
    return Status::OK();
  }
  std::vector<ScaleTableStage::ColScale> cols;
  cols.reserve(options_.columns.size());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    // Unknown or non-numeric columns decline fusion; the interpreted path
    // owns reporting those errors with full pipeline context.
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(options_.columns[c]));
    if (plan->SlotDeclaredType(slot) == ValueType::kString) {
      return Status::FailedPrecondition("cannot scale non-numeric column " +
                                        options_.columns[c]);
    }
    const uint32_t key = static_cast<uint32_t>(c);
    cols.push_back(ScaleTableStage::ColScale{slot, MeanOf(key), StdDevOf(key)});
  }
  plan->AddStage(std::make_unique<ScaleTableStage>(std::move(cols)));
  return Status::OK();
}

void StandardScaler::ScaleFeatures(FeatureData* features) const {
  const uint32_t dim = features->dim;
  size_t total_nnz = 0;
  for (const SparseVector& x : features->features) total_nnz += x.nnz();
  // Per-batch memo of (mean, stddev) per feature index: indices repeat
  // heavily across rows, and the per-value map lookups plus sqrt dominate
  // the scaling cost.  The per-value arithmetic is unchanged, so outputs
  // are bit-identical to the unmemoized path.
  if (dim <= (1u << 20) && total_nnz >= dim / 16) {
    std::vector<uint8_t> seen(dim, 0);
    std::unique_ptr<double[]> mean(new double[dim]);
    std::unique_ptr<double[]> sd(new double[dim]);
    for (SparseVector& x : features->features) {
      x.TransformValues([&](uint32_t index, double value) {
        if (!seen[index]) {
          seen[index] = 1;
          mean[index] = options_.with_mean ? MeanOf(index) : 0.0;
          sd[index] = StdDevOf(index);
        }
        const double centered =
            options_.with_mean ? value - mean[index] : value;
        return sd[index] > kMinStdDev ? centered / sd[index] : centered;
      });
    }
    return;
  }
  for (SparseVector& x : features->features) {
    x.TransformValues([this](uint32_t index, double value) {
      const double sd = StdDevOf(index);
      const double centered = options_.with_mean ? value - MeanOf(index) : value;
      return sd > kMinStdDev ? centered / sd : centered;
    });
  }
}

Status StandardScaler::ScaleTable(TableData* table) const {
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table->schema()->FieldIndex(options_.columns[c]));
    const uint32_t key = static_cast<uint32_t>(c);
    const double mean = MeanOf(key);
    const double sd = StdDevOf(key);
    // Scaled cells are fractional, so integer columns widen to double —
    // the same static_cast the row path applied through Value::AsDouble.
    if (table->column(col).type() != ValueType::kDouble) {
      CDPIPE_RETURN_NOT_OK(table->PromoteColumnToDouble(col));
    }
    Column& column = table->mutable_column(col);
    std::vector<double>& cells = column.mutable_doubles();
    const size_t rows = cells.size();
    // Division is kept per-cell ((d - mean) / sd, not a precomputed
    // reciprocal) so results are bit-identical to the row path.
    if (sd > kMinStdDev) {
      if (!column.has_nulls()) {
        for (size_t r = 0; r < rows; ++r) cells[r] = (cells[r] - mean) / sd;
      } else {
        for (size_t r = 0; r < rows; ++r) {
          if (column.IsNull(r)) continue;
          cells[r] = (cells[r] - mean) / sd;
        }
      }
    } else {
      if (!column.has_nulls()) {
        for (size_t r = 0; r < rows; ++r) cells[r] = cells[r] - mean;
      } else {
        for (size_t r = 0; r < rows; ++r) {
          if (column.IsNull(r)) continue;
          cells[r] = cells[r] - mean;
        }
      }
    }
  }
  return Status::OK();
}

void StandardScaler::Reset() {
  stats_.clear();
  column_counts_.clear();
  total_rows_ = 0;
  table_mode_seen_ = false;
}

std::unique_ptr<PipelineComponent> StandardScaler::Clone() const {
  auto out = std::make_unique<StandardScaler>(options_);
  out->total_rows_ = total_rows_;
  out->stats_ = stats_;
  out->column_counts_ = column_counts_;
  out->table_mode_seen_ = table_mode_seen_;
  return out;
}

Status StandardScaler::SaveState(Serializer* out) const {
  out->WriteInt("scaler.total_rows", total_rows_);
  out->WriteInt("scaler.table_mode", table_mode_seen_ ? 1 : 0);
  std::vector<std::pair<uint32_t, Moments>> sorted(stats_.begin(),
                                                   stats_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> keys;
  std::vector<double> sums;
  std::vector<double> sum_squares;
  for (const auto& [key, m] : sorted) {
    keys.push_back(key);
    sums.push_back(m.sum);
    sum_squares.push_back(m.sum_squares);
  }
  out->WriteUint32Vector("scaler.keys", keys);
  out->WriteDoubleVector("scaler.sums", sums);
  out->WriteDoubleVector("scaler.sum_squares", sum_squares);
  std::vector<std::pair<uint32_t, double>> counts;
  for (const auto& [key, count] : column_counts_) {
    counts.emplace_back(key, static_cast<double>(count));
  }
  std::sort(counts.begin(), counts.end());
  out->WritePairs("scaler.column_counts", counts);
  return Status::OK();
}

Status StandardScaler::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(total_rows_, in->ReadInt("scaler.total_rows"));
  CDPIPE_ASSIGN_OR_RETURN(int64_t table_mode,
                          in->ReadInt("scaler.table_mode"));
  table_mode_seen_ = table_mode != 0;
  CDPIPE_ASSIGN_OR_RETURN(auto keys, in->ReadUint32Vector("scaler.keys"));
  CDPIPE_ASSIGN_OR_RETURN(auto sums, in->ReadDoubleVector("scaler.sums"));
  CDPIPE_ASSIGN_OR_RETURN(auto sum_squares,
                          in->ReadDoubleVector("scaler.sum_squares"));
  if (keys.size() != sums.size() || keys.size() != sum_squares.size()) {
    return Status::InvalidArgument("scaler state arrays misaligned");
  }
  stats_.clear();
  for (size_t i = 0; i < keys.size(); ++i) {
    stats_[keys[i]] = Moments{sums[i], sum_squares[i]};
  }
  CDPIPE_ASSIGN_OR_RETURN(auto counts, in->ReadPairs("scaler.column_counts"));
  column_counts_.clear();
  for (const auto& [key, count] : counts) {
    column_counts_[key] = static_cast<int64_t>(count);
  }
  return Status::OK();
}

std::string StandardScaler::DescribeState() const {
  return StrFormat("moments for %zu dimensions over %lld rows", stats_.size(),
                   static_cast<long long>(total_rows_));
}

}  // namespace cdpipe
