#ifndef CDPIPE_PIPELINE_COMPONENT_H_
#define CDPIPE_PIPELINE_COMPONENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/io/serialization.h"

namespace cdpipe {

namespace fusion {
class PlanBuilder;
}  // namespace fusion

/// Component classes from Table 1 of the paper.  The class determines the
/// unit of work and the size complexity of the output (all our components
/// are O(p) in the input size; one-hot encoding stays O(p) because it emits
/// sparse vectors, see §3.2.1).
enum class ComponentKind {
  kDataTransformation,  ///< per-row filtering or mapping
  kFeatureSelection,    ///< per-column selection
  kFeatureExtraction,   ///< per-column generation of new columns
};

const char* ComponentKindName(ComponentKind kind);

/// A stage of a deployed machine learning pipeline.
///
/// Per §4.3 of the paper, every component implements two methods:
///
///  - `Update`: incrementally folds a batch into the component's internal
///    statistics (the *online statistics computation* optimization).  Called
///    exactly once per arriving training chunk, on the online path, before
///    `Transform`.  Never called during re-materialization or inference.
///  - `Transform`: applies the component using the current statistics.  Must
///    not mutate statistics, so the same features are produced for training
///    data and prediction queries (train/serve consistency) and evicted
///    feature chunks can be re-materialized at any later time.
///
/// Components whose statistics cannot be maintained incrementally (exact
/// percentiles, PCA, ...) are outside the platform's contract (§3.1); the
/// `supports_online_statistics` flag exists so such a component can be
/// rejected at pipeline construction time.
class PipelineComponent {
 public:
  virtual ~PipelineComponent() = default;

  virtual std::string name() const = 0;
  virtual ComponentKind kind() const = 0;

  /// True when the component maintains statistics (is stateful).
  virtual bool is_stateful() const { return false; }

  /// True when the statistics can be folded in incrementally.  Stateless
  /// components trivially support this.  The Pipeline refuses stateful
  /// components that return false here.
  virtual bool supports_online_statistics() const { return true; }

  /// Incrementally updates internal statistics from `batch`.
  virtual Status Update(const DataBatch& batch) {
    (void)batch;
    return Status::OK();
  }

  /// Transforms `batch` using current statistics.  Must be const: the
  /// platform calls this concurrently during proactive training.
  virtual Result<DataBatch> Transform(const DataBatch& batch) const = 0;

  /// Transform for a batch the caller no longer needs.  In-place components
  /// (imputer, scaler) override this to mutate the batch instead of copying
  /// it; the default delegates to `Transform`.  The pipeline drives every
  /// stage through this entry point — intermediate batches are always owned
  /// by the pipeline loop.  Overrides must produce output bit-identical to
  /// `Transform` on the same input.
  virtual Result<DataBatch> TransformOwned(DataBatch&& batch) const {
    return Transform(batch);
  }

  /// Contributes this component's block kernel(s) to a fused plan under
  /// construction (see src/pipeline/fusion/fusion.h).  Implementations
  /// resolve columns, snapshot dispatch decisions, and append stages whose
  /// output is bit-identical to `Transform` on the same rows.  Returning a
  /// non-OK status — the default — declines fusion for the whole pipeline;
  /// the caller then uses the interpreted loop, so declining is never an
  /// execution error.  Configurations a kernel cannot express exactly
  /// (wrong column types, unsupported options) must decline rather than
  /// approximate: the interpreted path owns the error reporting.
  virtual Status Fuse(fusion::PlanBuilder* plan) const {
    (void)plan;
    return Status::Unimplemented("component does not define a block kernel");
  }

  /// Discards all statistics, returning the component to its initial state.
  virtual void Reset() {}

  /// Deep copy, including statistics.  Used for warm starting and for the
  /// NoOptimization baseline (which recomputes statistics on throwaway
  /// clones).
  virtual std::unique_ptr<PipelineComponent> Clone() const = 0;

  /// One-line human-readable summary of the statistics (for reports).
  virtual std::string DescribeState() const { return "(stateless)"; }

  /// Checkpointing: persists / restores the component's statistics.
  /// Stateless components have nothing to save.  Configuration is NOT
  /// saved — the loader must reconstruct the same pipeline structure first.
  virtual Status SaveState(Serializer* out) const {
    (void)out;
    return Status::OK();
  }
  virtual Status LoadState(Deserializer* in) {
    (void)in;
    return Status::OK();
  }
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_COMPONENT_H_
