#include "src/pipeline/pipeline.h"

#include <algorithm>
#include <utility>

#include "src/common/stopwatch.h"
#include "src/engine/execution_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

obs::Histogram* ComponentHistogram(const std::string& component_name) {
  return obs::MetricsRegistry::Global().GetHistogram(
      "pipeline.component." + component_name + ".transform_seconds");
}

/// Rows per transform shard / maximum shard fan-out for the parallel pure
/// path.  As with the gradient shards in linear_model.cc, the shard count
/// is a function of the row count ONLY (never the worker count) and shard
/// outputs are concatenated in ascending shard order, so serial and
/// parallel runs produce bit-identical features.
constexpr size_t kMinRowsPerTransformShard = 256;
constexpr size_t kMaxTransformShards = 64;

size_t NumTransformShards(size_t rows) {
  return std::clamp(rows / kMinRowsPerTransformShard, size_t{1},
                    kMaxTransformShards);
}

/// The pipeline's entry schema: a single string column named "raw".
const std::shared_ptr<const Schema>& RawSchema() {
  static const std::shared_ptr<const Schema> kRawSchema =
      std::move(Schema::Make({Field{"raw", ValueType::kString}})).ValueOrDie();
  return kRawSchema;
}

}  // namespace

namespace {

/// The pipeline contract: the final batch must be vectorized features.
Result<FeatureData> FinishBatch(DataBatch batch, const std::string& context) {
  if (auto* features = std::get_if<FeatureData>(&batch)) {
    CDPIPE_RETURN_NOT_OK(features->Validate());
    return std::move(*features);
  }
  return Status::FailedPrecondition(
      "pipeline did not end in a vectorizing component (" + context +
      " produced a table batch); append a FeatureHasher, OneHotEncoder, or "
      "VectorAssembler");
}

void CountScan(size_t* rows_scanned, const DataBatch& batch) {
  if (rows_scanned != nullptr) *rows_scanned += BatchNumRows(batch);
}

}  // namespace

Status Pipeline::AddComponent(std::unique_ptr<PipelineComponent> component) {
  if (component == nullptr) {
    return Status::InvalidArgument("component must not be null");
  }
  if (component->is_stateful() && !component->supports_online_statistics()) {
    return Status::FailedPrecondition(
        "component '" + component->name() +
        "' keeps statistics that cannot be computed incrementally; the "
        "platform does not support such components (paper, section 3.1)");
  }
  component_histograms_.push_back(ComponentHistogram(component->name()));
  components_.push_back(std::move(component));
  return Status::OK();
}

TableData Pipeline::WrapRaw(const RawChunk& chunk) {
  Column raw(ValueType::kString);
  for (const std::string& record : chunk.records) {
    raw.AppendBorrowedString(record);
  }
  std::vector<Column> columns;
  columns.push_back(std::move(raw));
  return std::move(TableData::Make(RawSchema(), std::move(columns)))
      .ValueOrDie();
}

Result<FeatureData> Pipeline::UpdateAndTransform(const RawChunk& chunk,
                                                 size_t* rows_scanned) {
  DataBatch batch = WrapRaw(chunk);
  for (size_t i = 0; i < components_.size(); ++i) {
    const auto& component = components_[i];
    CDPIPE_TRACE_SPAN(component->name(), "pipeline");
    Stopwatch watch;
    if (component->is_stateful()) {
      CountScan(rows_scanned, batch);  // the statistics-update scan
      CDPIPE_RETURN_NOT_OK(component->Update(batch));
    }
    CountScan(rows_scanned, batch);  // the transform scan
    CDPIPE_ASSIGN_OR_RETURN(batch, component->TransformOwned(std::move(batch)));
    component_histograms_[i]->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

Result<FeatureData> Pipeline::RunTransform(DataBatch batch,
                                           size_t* rows_scanned) const {
  for (size_t i = 0; i < components_.size(); ++i) {
    const auto& component = components_[i];
    CDPIPE_TRACE_SPAN(component->name(), "pipeline");
    Stopwatch watch;
    CountScan(rows_scanned, batch);
    CDPIPE_ASSIGN_OR_RETURN(batch, component->TransformOwned(std::move(batch)));
    component_histograms_[i]->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

Result<FeatureData> Pipeline::Transform(const RawChunk& chunk,
                                        size_t* rows_scanned) const {
  return RunTransform(WrapRaw(chunk), rows_scanned);
}

Result<FeatureData> Pipeline::Transform(const RawChunk& chunk,
                                        ExecutionEngine* engine,
                                        size_t* rows_scanned) const {
  const size_t rows = chunk.records.size();
  const size_t num_shards = NumTransformShards(rows);
  if (engine == nullptr || engine->num_threads() <= 1 || num_shards <= 1) {
    return Transform(chunk, rows_scanned);
  }
  // Shard boundaries depend on the row count only: the first `remainder`
  // shards take one extra row.
  const size_t base = rows / num_shards;
  const size_t remainder = rows % num_shards;
  struct ShardOutput {
    FeatureData features;
    size_t scanned = 0;
  };
  std::vector<ShardOutput> shards(num_shards);
  CDPIPE_RETURN_NOT_OK(engine->ParallelFor(num_shards, [&](size_t s) -> Status {
    const size_t begin = s * base + std::min(s, remainder);
    const size_t end = begin + base + (s < remainder ? 1 : 0);
    Column raw(ValueType::kString);
    for (size_t r = begin; r < end; ++r) {
      raw.AppendBorrowedString(chunk.records[r]);
    }
    std::vector<Column> columns;
    columns.push_back(std::move(raw));
    CDPIPE_ASSIGN_OR_RETURN(TableData table,
                            TableData::Make(RawSchema(), std::move(columns)));
    ShardOutput& out = shards[s];
    out.scanned = 0;  // overwritten wholesale: the task is retry-idempotent
    CDPIPE_ASSIGN_OR_RETURN(
        out.features, RunTransform(DataBatch(std::move(table)), &out.scanned));
    return Status::OK();
  }));
  // Fixed-order merge: concatenate shard outputs in ascending shard order.
  FeatureData merged;
  merged.dim = shards.empty() ? 0 : shards[0].features.dim;
  size_t total = 0;
  for (const ShardOutput& s : shards) total += s.features.num_rows();
  merged.features.reserve(total);
  merged.labels.reserve(total);
  for (ShardOutput& s : shards) {
    if (s.features.dim != merged.dim) {
      return Status::Internal("transform shards disagree on feature dim");
    }
    std::move(s.features.features.begin(), s.features.features.end(),
              std::back_inserter(merged.features));
    merged.labels.insert(merged.labels.end(), s.features.labels.begin(),
                         s.features.labels.end());
    if (rows_scanned != nullptr) *rows_scanned += s.scanned;
  }
  return merged;
}

Result<FeatureData> Pipeline::TransformRecomputingStatistics(
    const RawChunk& chunk, size_t* rows_scanned) const {
  DataBatch batch = WrapRaw(chunk);
  for (size_t i = 0; i < components_.size(); ++i) {
    const auto& component = components_[i];
    CDPIPE_TRACE_SPAN(component->name(), "pipeline");
    Stopwatch watch;
    if (component->is_stateful()) {
      // Without online statistics computation the platform has to rescan the
      // chunk to rebuild the component's statistics before transforming.
      std::unique_ptr<PipelineComponent> scratch = component->Clone();
      scratch->Reset();
      CountScan(rows_scanned, batch);  // the recomputation scan
      CDPIPE_RETURN_NOT_OK(scratch->Update(batch));
      CountScan(rows_scanned, batch);
      CDPIPE_ASSIGN_OR_RETURN(batch,
                              scratch->TransformOwned(std::move(batch)));
    } else {
      CountScan(rows_scanned, batch);
      CDPIPE_ASSIGN_OR_RETURN(batch,
                              component->TransformOwned(std::move(batch)));
    }
    component_histograms_[i]->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

std::unique_ptr<Pipeline> Pipeline::Clone() const {
  auto out = std::make_unique<Pipeline>();
  for (const auto& component : components_) {
    out->component_histograms_.push_back(
        ComponentHistogram(component->name()));
    out->components_.push_back(component->Clone());
  }
  return out;
}

void Pipeline::Reset() {
  for (const auto& component : components_) component->Reset();
}

Status Pipeline::SaveState(Serializer* out) const {
  out->WriteInt("pipeline.num_components",
                static_cast<int64_t>(components_.size()));
  for (const auto& component : components_) {
    out->WriteString("pipeline.component", component->name());
    CDPIPE_RETURN_NOT_OK(component->SaveState(out));
  }
  return Status::OK();
}

Status Pipeline::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(int64_t count,
                          in->ReadInt("pipeline.num_components"));
  if (count != static_cast<int64_t>(components_.size())) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) +
        " components, pipeline has " + std::to_string(components_.size()));
  }
  for (const auto& component : components_) {
    CDPIPE_ASSIGN_OR_RETURN(std::string name,
                            in->ReadString("pipeline.component"));
    if (name != component->name()) {
      return Status::InvalidArgument("checkpoint component '" + name +
                                     "' does not match pipeline component '" +
                                     component->name() + "'");
    }
    CDPIPE_RETURN_NOT_OK(component->LoadState(in));
  }
  return Status::OK();
}

std::string Pipeline::ToString() const {
  std::string out = "Pipeline[";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += components_[i]->name();
  }
  out += "]";
  return out;
}

}  // namespace cdpipe
