#include "src/pipeline/pipeline.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/stopwatch.h"
#include "src/engine/execution_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

obs::Histogram* ComponentHistogram(const std::string& component_name) {
  return obs::MetricsRegistry::Global().GetHistogram(
      "pipeline.component." + component_name + ".transform_seconds");
}

/// Rows per transform shard / maximum shard fan-out for the parallel pure
/// path.  As with the gradient shards in linear_model.cc, the shard count
/// is a function of the row count ONLY (never the worker count) and shard
/// outputs are concatenated in ascending shard order, so serial and
/// parallel runs produce bit-identical features.
constexpr size_t kMinRowsPerTransformShard = 256;
constexpr size_t kMaxTransformShards = 64;

size_t NumTransformShards(size_t rows) {
  return std::clamp(rows / kMinRowsPerTransformShard, size_t{1},
                    kMaxTransformShards);
}

/// The pipeline's entry schema: a single string column named "raw".
const std::shared_ptr<const Schema>& RawSchema() {
  static const std::shared_ptr<const Schema> kRawSchema =
      std::move(Schema::Make({Field{"raw", ValueType::kString}})).ValueOrDie();
  return kRawSchema;
}

/// CDPIPE_EXEC_MODE overrides the execution mode at every call site:
/// "interpreted" is the kill switch for the fused path, "fused" forces even
/// the serial Transform overload through the fused plan (CI runs the fault
/// suite this way).  Read once; unrecognized values are ignored.
enum class ExecModeOverride { kNone, kInterpreted, kFused };

ExecModeOverride GetExecModeOverride() {
  static const ExecModeOverride kOverride = [] {
    const char* env = std::getenv("CDPIPE_EXEC_MODE");
    if (env == nullptr) return ExecModeOverride::kNone;
    if (std::strcmp(env, "interpreted") == 0) {
      return ExecModeOverride::kInterpreted;
    }
    if (std::strcmp(env, "fused") == 0) return ExecModeOverride::kFused;
    return ExecModeOverride::kNone;
  }();
  return kOverride;
}

/// The pipeline contract: the final batch must be vectorized features.
Result<FeatureData> FinishBatch(DataBatch batch, const std::string& context) {
  if (auto* features = std::get_if<FeatureData>(&batch)) {
    CDPIPE_RETURN_NOT_OK(features->Validate());
    return std::move(*features);
  }
  return Status::FailedPrecondition(
      "pipeline did not end in a vectorizing component (" + context +
      " produced a table batch); append a FeatureHasher, OneHotEncoder, or "
      "VectorAssembler");
}

void CountScan(size_t* rows_scanned, const DataBatch& batch) {
  if (rows_scanned != nullptr) *rows_scanned += BatchNumRows(batch);
}

struct ShardOutput {
  FeatureData features;
  size_t scanned = 0;
};

/// Fixed-order merge: concatenates shard outputs in ascending shard order.
/// Shared by the interpreted and fused sharded paths so both produce the
/// exact same concatenation.
Result<FeatureData> MergeShardOutputs(std::vector<ShardOutput> shards,
                                      size_t* rows_scanned) {
  FeatureData merged;
  merged.dim = shards.empty() ? 0 : shards[0].features.dim;
  size_t total = 0;
  for (const ShardOutput& s : shards) total += s.features.num_rows();
  merged.features.reserve(total);
  merged.labels.reserve(total);
  for (ShardOutput& s : shards) {
    if (s.features.dim != merged.dim) {
      return Status::Internal("transform shards disagree on feature dim");
    }
    std::move(s.features.features.begin(), s.features.features.end(),
              std::back_inserter(merged.features));
    merged.labels.insert(merged.labels.end(), s.features.labels.begin(),
                         s.features.labels.end());
    if (rows_scanned != nullptr) *rows_scanned += s.scanned;
  }
  return merged;
}

}  // namespace

Status Pipeline::AddComponent(std::unique_ptr<PipelineComponent> component) {
  if (component == nullptr) {
    return Status::InvalidArgument("component must not be null");
  }
  if (component->is_stateful() && !component->supports_online_statistics()) {
    return Status::FailedPrecondition(
        "component '" + component->name() +
        "' keeps statistics that cannot be computed incrementally; the "
        "platform does not support such components (paper, section 3.1)");
  }
  component_histograms_.push_back(ComponentHistogram(component->name()));
  component_names_.push_back(component->name());
  components_.push_back(std::move(component));
  // Structure changed: any cached plan is for a different pipeline.
  state_version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

TableData Pipeline::WrapRaw(const RawChunk& chunk) {
  Column raw(ValueType::kString);
  for (const std::string& record : chunk.records) {
    raw.AppendBorrowedString(record);
  }
  std::vector<Column> columns;
  columns.push_back(std::move(raw));
  return std::move(TableData::Make(RawSchema(), std::move(columns)))
      .ValueOrDie();
}

std::vector<Pipeline::StageRef> Pipeline::TransformStages() const {
  std::vector<StageRef> stages;
  stages.reserve(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    stages.push_back(StageRef{components_[i].get(), component_histograms_[i],
                              component_names_[i].c_str()});
  }
  return stages;
}

Result<FeatureData> Pipeline::UpdateAndTransform(const RawChunk& chunk,
                                                 size_t* rows_scanned) {
  // Invalidate cached fused plans before the first statistic moves.
  state_version_.fetch_add(1, std::memory_order_acq_rel);
  const std::vector<StageRef> stages = TransformStages();
  DataBatch batch = WrapRaw(chunk);
  for (const StageRef& stage : stages) {
    CDPIPE_TRACE_SPAN(stage.name, "pipeline");
    Stopwatch watch;
    if (stage.component->is_stateful()) {
      CountScan(rows_scanned, batch);  // the statistics-update scan
      CDPIPE_RETURN_NOT_OK(stage.component->Update(batch));
    }
    CountScan(rows_scanned, batch);  // the transform scan
    CDPIPE_ASSIGN_OR_RETURN(batch,
                            stage.component->TransformOwned(std::move(batch)));
    stage.histogram->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

Result<FeatureData> Pipeline::RunTransform(const std::vector<StageRef>& stages,
                                           DataBatch batch,
                                           size_t* rows_scanned) const {
  for (const StageRef& stage : stages) {
    CDPIPE_TRACE_SPAN(stage.name, "pipeline");
    Stopwatch watch;
    CountScan(rows_scanned, batch);
    CDPIPE_ASSIGN_OR_RETURN(batch,
                            stage.component->TransformOwned(std::move(batch)));
    stage.histogram->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

std::shared_ptr<const fusion::FusedPlan> Pipeline::FusedPlanForTransform()
    const {
  if (plan_cache_ == nullptr) return nullptr;  // moved-from shell
  return plan_cache_->GetOrCompile(components_, *RawSchema(),
                                   state_version());
}

Result<FeatureData> Pipeline::TransformFused(const RawChunk& chunk,
                                             ExecutionEngine* engine,
                                             const fusion::FusedPlan& plan,
                                             size_t* rows_scanned) const {
  CDPIPE_TRACE_SPAN("pipeline.fused_transform", "pipeline");
  const size_t rows = chunk.records.size();
  const size_t num_shards = NumTransformShards(rows);
  if (engine == nullptr || engine->num_threads() <= 1 || num_shards <= 1) {
    FeatureData out;
    fusion::ScratchLease lease(scratch_pool_.get());
    CDPIPE_RETURN_NOT_OK(plan.Execute(chunk.records, 0, rows, lease.get(),
                                      &out, rows_scanned));
    return out;
  }
  const size_t base = rows / num_shards;
  const size_t remainder = rows % num_shards;
  std::vector<ShardOutput> shards(num_shards);
  CDPIPE_RETURN_NOT_OK(
      engine->ParallelFor(num_shards, [&](size_t s) -> Status {
        const size_t begin = s * base + std::min(s, remainder);
        const size_t end = begin + base + (s < remainder ? 1 : 0);
        ShardOutput& out = shards[s];
        out.scanned = 0;  // overwritten wholesale: the task is
        out.features = FeatureData{};  // retry-idempotent
        fusion::ScratchLease lease(scratch_pool_.get());
        return plan.Execute(chunk.records, begin, end, lease.get(),
                            &out.features, &out.scanned);
      }));
  return MergeShardOutputs(std::move(shards), rows_scanned);
}

Result<FeatureData> Pipeline::Transform(const RawChunk& chunk,
                                        size_t* rows_scanned) const {
  if (GetExecModeOverride() == ExecModeOverride::kFused) {
    if (std::shared_ptr<const fusion::FusedPlan> plan =
            FusedPlanForTransform()) {
      return TransformFused(chunk, nullptr, *plan, rows_scanned);
    }
  }
  return RunTransform(TransformStages(), WrapRaw(chunk), rows_scanned);
}

Result<FeatureData> Pipeline::Transform(const RawChunk& chunk,
                                        ExecutionEngine* engine,
                                        size_t* rows_scanned,
                                        ExecMode mode) const {
  switch (GetExecModeOverride()) {
    case ExecModeOverride::kInterpreted:
      mode = ExecMode::kInterpreted;
      break;
    case ExecModeOverride::kFused:
      mode = ExecMode::kFused;
      break;
    case ExecModeOverride::kNone:
      break;
  }
  if (mode == ExecMode::kFused) {
    if (std::shared_ptr<const fusion::FusedPlan> plan =
            FusedPlanForTransform()) {
      return TransformFused(chunk, engine, *plan, rows_scanned);
    }
  }
  const size_t rows = chunk.records.size();
  const size_t num_shards = NumTransformShards(rows);
  const std::vector<StageRef> stages = TransformStages();
  if (engine == nullptr || engine->num_threads() <= 1 || num_shards <= 1) {
    return RunTransform(stages, WrapRaw(chunk), rows_scanned);
  }
  // Shard boundaries depend on the row count only: the first `remainder`
  // shards take one extra row.
  const size_t base = rows / num_shards;
  const size_t remainder = rows % num_shards;
  std::vector<ShardOutput> shards(num_shards);
  CDPIPE_RETURN_NOT_OK(
      engine->ParallelFor(num_shards, [&](size_t s) -> Status {
        const size_t begin = s * base + std::min(s, remainder);
        const size_t end = begin + base + (s < remainder ? 1 : 0);
        Column raw(ValueType::kString);
        for (size_t r = begin; r < end; ++r) {
          raw.AppendBorrowedString(chunk.records[r]);
        }
        std::vector<Column> columns;
        columns.push_back(std::move(raw));
        CDPIPE_ASSIGN_OR_RETURN(
            TableData table, TableData::Make(RawSchema(), std::move(columns)));
        ShardOutput& out = shards[s];
        out.scanned = 0;  // overwritten wholesale: the task is retry-idempotent
        CDPIPE_ASSIGN_OR_RETURN(
            out.features,
            RunTransform(stages, DataBatch(std::move(table)), &out.scanned));
        return Status::OK();
      }));
  return MergeShardOutputs(std::move(shards), rows_scanned);
}

Result<FeatureData> Pipeline::TransformRecomputingStatistics(
    const RawChunk& chunk, size_t* rows_scanned) const {
  const std::vector<StageRef> stages = TransformStages();
  DataBatch batch = WrapRaw(chunk);
  for (const StageRef& stage : stages) {
    CDPIPE_TRACE_SPAN(stage.name, "pipeline");
    Stopwatch watch;
    if (stage.component->is_stateful()) {
      // Without online statistics computation the platform has to rescan the
      // chunk to rebuild the component's statistics before transforming.
      std::unique_ptr<PipelineComponent> scratch = stage.component->Clone();
      scratch->Reset();
      CountScan(rows_scanned, batch);  // the recomputation scan
      CDPIPE_RETURN_NOT_OK(scratch->Update(batch));
      CountScan(rows_scanned, batch);
      CDPIPE_ASSIGN_OR_RETURN(batch,
                              scratch->TransformOwned(std::move(batch)));
    } else {
      CountScan(rows_scanned, batch);
      CDPIPE_ASSIGN_OR_RETURN(batch,
                              stage.component->TransformOwned(std::move(batch)));
    }
    stage.histogram->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

std::unique_ptr<Pipeline> Pipeline::Clone() const {
  auto out = std::make_unique<Pipeline>();
  for (size_t i = 0; i < components_.size(); ++i) {
    out->component_histograms_.push_back(component_histograms_[i]);
    out->component_names_.push_back(component_names_[i]);
    out->components_.push_back(components_[i]->Clone());
  }
  return out;
}

void Pipeline::Reset() {
  state_version_.fetch_add(1, std::memory_order_acq_rel);
  for (const auto& component : components_) component->Reset();
}

Status Pipeline::SaveState(Serializer* out) const {
  out->WriteInt("pipeline.num_components",
                static_cast<int64_t>(components_.size()));
  for (const auto& component : components_) {
    out->WriteString("pipeline.component", component->name());
    CDPIPE_RETURN_NOT_OK(component->SaveState(out));
  }
  return Status::OK();
}

Status Pipeline::LoadState(Deserializer* in) {
  // Invalidate cached fused plans before any component statistic is
  // replaced (a partially applied load must not reuse old plans either).
  state_version_.fetch_add(1, std::memory_order_acq_rel);
  CDPIPE_ASSIGN_OR_RETURN(int64_t count,
                          in->ReadInt("pipeline.num_components"));
  if (count != static_cast<int64_t>(components_.size())) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) +
        " components, pipeline has " + std::to_string(components_.size()));
  }
  for (const auto& component : components_) {
    CDPIPE_ASSIGN_OR_RETURN(std::string name,
                            in->ReadString("pipeline.component"));
    if (name != component->name()) {
      return Status::InvalidArgument("checkpoint component '" + name +
                                     "' does not match pipeline component '" +
                                     component->name() + "'");
    }
    CDPIPE_RETURN_NOT_OK(component->LoadState(in));
  }
  return Status::OK();
}

std::string Pipeline::ToString() const {
  std::string out = "Pipeline[";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += components_[i]->name();
  }
  out += "]";
  return out;
}

}  // namespace cdpipe
