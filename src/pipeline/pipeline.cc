#include "src/pipeline/pipeline.h"

#include <utility>

#include "src/common/stopwatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

obs::Histogram* ComponentHistogram(const std::string& component_name) {
  return obs::MetricsRegistry::Global().GetHistogram(
      "pipeline.component." + component_name + ".transform_seconds");
}

}  // namespace

namespace {

/// The pipeline contract: the final batch must be vectorized features.
Result<FeatureData> FinishBatch(DataBatch batch, const std::string& context) {
  if (auto* features = std::get_if<FeatureData>(&batch)) {
    CDPIPE_RETURN_NOT_OK(features->Validate());
    return std::move(*features);
  }
  return Status::FailedPrecondition(
      "pipeline did not end in a vectorizing component (" + context +
      " produced a table batch); append a FeatureHasher, OneHotEncoder, or "
      "VectorAssembler");
}

void CountScan(size_t* rows_scanned, const DataBatch& batch) {
  if (rows_scanned != nullptr) *rows_scanned += BatchNumRows(batch);
}

}  // namespace

Status Pipeline::AddComponent(std::unique_ptr<PipelineComponent> component) {
  if (component == nullptr) {
    return Status::InvalidArgument("component must not be null");
  }
  if (component->is_stateful() && !component->supports_online_statistics()) {
    return Status::FailedPrecondition(
        "component '" + component->name() +
        "' keeps statistics that cannot be computed incrementally; the "
        "platform does not support such components (paper, section 3.1)");
  }
  component_histograms_.push_back(ComponentHistogram(component->name()));
  components_.push_back(std::move(component));
  return Status::OK();
}

TableData Pipeline::WrapRaw(const RawChunk& chunk) {
  static const std::shared_ptr<const Schema> kRawSchema =
      std::move(Schema::Make({Field{"raw", ValueType::kString}})).ValueOrDie();
  TableData table;
  table.schema = kRawSchema;
  table.rows.reserve(chunk.records.size());
  for (const std::string& record : chunk.records) {
    table.rows.push_back(Row{Value::String(record)});
  }
  return table;
}

Result<FeatureData> Pipeline::UpdateAndTransform(const RawChunk& chunk,
                                                 size_t* rows_scanned) {
  DataBatch batch = WrapRaw(chunk);
  for (size_t i = 0; i < components_.size(); ++i) {
    const auto& component = components_[i];
    CDPIPE_TRACE_SPAN(component->name(), "pipeline");
    Stopwatch watch;
    if (component->is_stateful()) {
      CountScan(rows_scanned, batch);  // the statistics-update scan
      CDPIPE_RETURN_NOT_OK(component->Update(batch));
    }
    CountScan(rows_scanned, batch);  // the transform scan
    CDPIPE_ASSIGN_OR_RETURN(batch, component->Transform(batch));
    component_histograms_[i]->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

Result<FeatureData> Pipeline::Transform(const RawChunk& chunk,
                                        size_t* rows_scanned) const {
  DataBatch batch = WrapRaw(chunk);
  for (size_t i = 0; i < components_.size(); ++i) {
    const auto& component = components_[i];
    CDPIPE_TRACE_SPAN(component->name(), "pipeline");
    Stopwatch watch;
    CountScan(rows_scanned, batch);
    CDPIPE_ASSIGN_OR_RETURN(batch, component->Transform(batch));
    component_histograms_[i]->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

Result<FeatureData> Pipeline::TransformRecomputingStatistics(
    const RawChunk& chunk, size_t* rows_scanned) const {
  DataBatch batch = WrapRaw(chunk);
  for (size_t i = 0; i < components_.size(); ++i) {
    const auto& component = components_[i];
    CDPIPE_TRACE_SPAN(component->name(), "pipeline");
    Stopwatch watch;
    if (component->is_stateful()) {
      // Without online statistics computation the platform has to rescan the
      // chunk to rebuild the component's statistics before transforming.
      std::unique_ptr<PipelineComponent> scratch = component->Clone();
      scratch->Reset();
      CountScan(rows_scanned, batch);  // the recomputation scan
      CDPIPE_RETURN_NOT_OK(scratch->Update(batch));
      CountScan(rows_scanned, batch);
      CDPIPE_ASSIGN_OR_RETURN(batch, scratch->Transform(batch));
    } else {
      CountScan(rows_scanned, batch);
      CDPIPE_ASSIGN_OR_RETURN(batch, component->Transform(batch));
    }
    component_histograms_[i]->Observe(watch.ElapsedSeconds());
  }
  return FinishBatch(std::move(batch), ToString());
}

std::unique_ptr<Pipeline> Pipeline::Clone() const {
  auto out = std::make_unique<Pipeline>();
  for (const auto& component : components_) {
    out->component_histograms_.push_back(
        ComponentHistogram(component->name()));
    out->components_.push_back(component->Clone());
  }
  return out;
}

void Pipeline::Reset() {
  for (const auto& component : components_) component->Reset();
}

Status Pipeline::SaveState(Serializer* out) const {
  out->WriteInt("pipeline.num_components",
                static_cast<int64_t>(components_.size()));
  for (const auto& component : components_) {
    out->WriteString("pipeline.component", component->name());
    CDPIPE_RETURN_NOT_OK(component->SaveState(out));
  }
  return Status::OK();
}

Status Pipeline::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(int64_t count,
                          in->ReadInt("pipeline.num_components"));
  if (count != static_cast<int64_t>(components_.size())) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) +
        " components, pipeline has " + std::to_string(components_.size()));
  }
  for (const auto& component : components_) {
    CDPIPE_ASSIGN_OR_RETURN(std::string name,
                            in->ReadString("pipeline.component"));
    if (name != component->name()) {
      return Status::InvalidArgument("checkpoint component '" + name +
                                     "' does not match pipeline component '" +
                                     component->name() + "'");
    }
    CDPIPE_RETURN_NOT_OK(component->LoadState(in));
  }
  return Status::OK();
}

std::string Pipeline::ToString() const {
  std::string out = "Pipeline[";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += " -> ";
    out += components_[i]->name();
  }
  out += "]";
  return out;
}

}  // namespace cdpipe
