#include "src/pipeline/column_projector.h"

#include <utility>

#include "src/common/logging.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

ColumnProjector::ColumnProjector(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  CDPIPE_CHECK(!columns_.empty());
}

Result<DataBatch> ColumnProjector::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "column_projector expects a table batch");
  }
  std::vector<size_t> indices(columns_.size());
  std::vector<Field> fields(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(indices[i],
                            table->schema()->FieldIndex(columns_[i]));
    fields[i] = table->schema()->field(indices[i]);
  }
  CDPIPE_ASSIGN_OR_RETURN(auto schema, Schema::Make(std::move(fields)));

  // Column-at-a-time projection: whole columns are copied (or moved from an
  // owned batch via TransformOwned); no per-cell work at all.
  std::vector<Column> columns;
  columns.reserve(indices.size());
  for (size_t idx : indices) columns.push_back(table->column(idx));
  CDPIPE_ASSIGN_OR_RETURN(
      TableData out, TableData::Make(std::move(schema), std::move(columns)));
  return DataBatch(std::move(out));
}

Result<DataBatch> ColumnProjector::TransformOwned(DataBatch&& batch) const {
  auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "column_projector expects a table batch");
  }
  std::vector<size_t> indices(columns_.size());
  std::vector<Field> fields(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(indices[i],
                            table->schema()->FieldIndex(columns_[i]));
    fields[i] = table->schema()->field(indices[i]);
  }
  // Schema::Make rejects duplicate names above, so every index is distinct
  // and the owned columns can be stolen outright.
  CDPIPE_ASSIGN_OR_RETURN(auto schema, Schema::Make(std::move(fields)));
  std::vector<Column> columns;
  columns.reserve(indices.size());
  for (size_t idx : indices) {
    columns.push_back(std::move(table->mutable_column(idx)));
  }
  CDPIPE_ASSIGN_OR_RETURN(
      TableData out, TableData::Make(std::move(schema), std::move(columns)));
  return DataBatch(std::move(out));
}

Status ColumnProjector::Fuse(fusion::PlanBuilder* plan) const {
  if (plan->repr() != fusion::PlanBuilder::Repr::kTable) {
    return Status::FailedPrecondition("column_projector expects a table batch");
  }
  // Projection only rewires the plan's logical-field -> physical-slot map;
  // downstream components compile against the projected schema and the
  // stage itself does no per-row work at all.
  CDPIPE_RETURN_NOT_OK(plan->Project(columns_));
  plan->AddElidedStage("column_projector");
  return Status::OK();
}

std::unique_ptr<PipelineComponent> ColumnProjector::Clone() const {
  return std::make_unique<ColumnProjector>(columns_);
}

}  // namespace cdpipe
