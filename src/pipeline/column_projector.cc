#include "src/pipeline/column_projector.h"

#include <utility>

#include "src/common/logging.h"

namespace cdpipe {

ColumnProjector::ColumnProjector(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  CDPIPE_CHECK(!columns_.empty());
}

Result<DataBatch> ColumnProjector::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "column_projector expects a table batch");
  }
  std::vector<size_t> indices(columns_.size());
  std::vector<Field> fields(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(indices[i],
                            table->schema->FieldIndex(columns_[i]));
    fields[i] = table->schema->field(indices[i]);
  }
  CDPIPE_ASSIGN_OR_RETURN(auto schema, Schema::Make(std::move(fields)));

  TableData out;
  out.schema = schema;
  out.rows.reserve(table->rows.size());
  for (const Row& row : table->rows) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.rows.push_back(std::move(projected));
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> ColumnProjector::Clone() const {
  return std::make_unique<ColumnProjector>(columns_);
}

}  // namespace cdpipe
