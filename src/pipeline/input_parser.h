#ifndef CDPIPE_PIPELINE_INPUT_PARSER_H_
#define CDPIPE_PIPELINE_INPUT_PARSER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Parses raw text records (the single-"raw"-column table produced by
/// `Pipeline::WrapRaw`) into typed data.  Two formats cover the paper's
/// pipelines:
///
///  - **LibSvm**: `"<label> <index>:<value> <index>:<value> ..."` — the URL
///    dataset's representation.  Produces FeatureData directly (labels are
///    mapped to ±1 for classifiers).  A value spelled `nan` is parsed as a
///    missing value, to be filled by the MissingValueImputer.
///  - **Csv**: delimiter-separated fields parsed against a target schema —
///    the Taxi dataset's representation.  Produces TableData.
///
/// Malformed records are dropped (and counted) unless `strict` is set, in
/// which case parsing fails with InvalidArgument.  Dropping is the right
/// deployment behaviour: one bad record must not stall the platform.
class InputParser : public PipelineComponent {
 public:
  enum class Format { kLibSvm, kCsv };

  struct Options {
    Format format = Format::kLibSvm;
    /// LibSvm: nominal feature dimension (indices must be < dim).
    uint32_t feature_dim = 0;
    /// LibSvm: map labels <= 0 to -1 and > 0 to +1 (classification).
    bool binarize_labels = true;
    /// Csv: target schema (field order matches column order).
    std::shared_ptr<const Schema> csv_schema;
    char delimiter = ',';
    /// Fail on malformed records instead of dropping them.
    bool strict = false;
  };

  explicit InputParser(Options options);

  std::string name() const override { return "input_parser"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  const Options& options() const { return options_; }

  /// Total records dropped as malformed since construction.
  size_t num_malformed() const {
    return malformed_.load(std::memory_order_relaxed);
  }

  /// Outcome for one record on the drop-malformed path.
  enum class RowVerdict { kOk, kMalformed };

  /// One CSV cell parsed into its typed slot, pending the verdict on the
  /// whole record (malformed records are dropped atomically).
  struct CsvCell {
    bool null = false;
    double d = 0.0;
    int64_t i = 0;
    std::string_view s;
  };

  /// Per-row libsvm kernel shared by the interpreted batch path and the
  /// fused block stage (one compiled body, so outputs are bit-identical):
  /// parses `line` into uncollapsed (index, value) entries plus the
  /// (possibly binarized) label, using `*tokens` as reusable scratch.
  /// Counts a malformed record and returns kMalformed — or InvalidArgument
  /// in strict mode.  Indices are validated against feature_dim.
  Result<RowVerdict> ParseLibSvmRecord(
      std::string_view line, std::vector<std::pair<uint32_t, double>>* entries,
      double* label, std::vector<std::string_view>* tokens) const;

  /// Per-row CSV kernel, same sharing contract: splits `line` on the
  /// delimiter into `*fields` and parses each against the csv schema into
  /// `*cells` (which must be presized to the schema's field count).
  Result<RowVerdict> ParseCsvRecord(std::string_view line,
                                    std::vector<std::string_view>* fields,
                                    std::vector<CsvCell>* cells) const;

 private:
  Result<DataBatch> TransformLibSvm(const TableData& table) const;
  Result<DataBatch> TransformCsv(const TableData& table) const;

  Options options_;
  mutable std::atomic<size_t> malformed_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_INPUT_PARSER_H_
