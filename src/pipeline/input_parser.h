#ifndef CDPIPE_PIPELINE_INPUT_PARSER_H_
#define CDPIPE_PIPELINE_INPUT_PARSER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Parses raw text records (the single-"raw"-column table produced by
/// `Pipeline::WrapRaw`) into typed data.  Two formats cover the paper's
/// pipelines:
///
///  - **LibSvm**: `"<label> <index>:<value> <index>:<value> ..."` — the URL
///    dataset's representation.  Produces FeatureData directly (labels are
///    mapped to ±1 for classifiers).  A value spelled `nan` is parsed as a
///    missing value, to be filled by the MissingValueImputer.
///  - **Csv**: delimiter-separated fields parsed against a target schema —
///    the Taxi dataset's representation.  Produces TableData.
///
/// Malformed records are dropped (and counted) unless `strict` is set, in
/// which case parsing fails with InvalidArgument.  Dropping is the right
/// deployment behaviour: one bad record must not stall the platform.
class InputParser : public PipelineComponent {
 public:
  enum class Format { kLibSvm, kCsv };

  struct Options {
    Format format = Format::kLibSvm;
    /// LibSvm: nominal feature dimension (indices must be < dim).
    uint32_t feature_dim = 0;
    /// LibSvm: map labels <= 0 to -1 and > 0 to +1 (classification).
    bool binarize_labels = true;
    /// Csv: target schema (field order matches column order).
    std::shared_ptr<const Schema> csv_schema;
    char delimiter = ',';
    /// Fail on malformed records instead of dropping them.
    bool strict = false;
  };

  explicit InputParser(Options options);

  std::string name() const override { return "input_parser"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  /// Total records dropped as malformed since construction.
  size_t num_malformed() const {
    return malformed_.load(std::memory_order_relaxed);
  }

 private:
  Result<DataBatch> TransformLibSvm(const TableData& table) const;
  Result<DataBatch> TransformCsv(const TableData& table) const;

  Options options_;
  mutable std::atomic<size_t> malformed_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_INPUT_PARSER_H_
