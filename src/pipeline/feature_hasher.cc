#include "src/pipeline/feature_hasher.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace cdpipe {
namespace {

/// 64-bit finalizer from MurmurHash3; good avalanche behaviour for integer
/// keys at negligible cost.
uint64_t MixHash(uint64_t key, uint64_t seed) {
  uint64_t h = key ^ seed;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

FeatureHasher::FeatureHasher(Options options) : options_(options) {
  CDPIPE_CHECK_GT(options_.bits, 0u);
  CDPIPE_CHECK_LE(options_.bits, 30u);
}

uint32_t FeatureHasher::BucketOf(uint32_t index) const {
  return static_cast<uint32_t>(MixHash(index, options_.seed)) &
         (output_dim() - 1);
}

double FeatureHasher::SignOf(uint32_t index) const {
  if (!options_.signed_hash) return 1.0;
  // An independent bit of the mixed hash decides the sign.
  return (MixHash(index, options_.seed ^ 0x9E3779B97F4A7C15ULL) & 1u) != 0
             ? 1.0
             : -1.0;
}

Result<DataBatch> FeatureHasher::Transform(const DataBatch& batch) const {
  const auto* features = std::get_if<FeatureData>(&batch);
  if (features == nullptr) {
    return Status::FailedPrecondition(
        "feature_hasher expects a vectorized batch; place it after the "
        "parser / encoder");
  }
  FeatureData out;
  out.dim = output_dim();
  out.features.reserve(features->features.size());
  out.labels = features->labels;

  size_t total_nnz = 0;
  for (const SparseVector& x : features->features) total_nnz += x.nnz();

  // Per-batch memo of (bucket, signed unit) per input index: raw indices
  // repeat heavily across the rows of a batch, and the two hash mixes per
  // occurrence are the bulk of the per-entry cost.  Dense arrays gated on
  // the input dim so the memset amortizes over the batch.
  const uint32_t in_dim = features->dim;
  const bool use_memo = in_dim <= (1u << 20) && total_nnz >= in_dim / 16;
  std::vector<uint8_t> memo_set;
  std::vector<uint32_t> memo_bucket;
  std::vector<double> memo_sign;
  if (use_memo) {
    memo_set.assign(in_dim, 0);
    memo_bucket.resize(in_dim);
    memo_sign.resize(in_dim);
  }

  // Collision-free rows (the common case) skip the per-row sort: a dense
  // accumulator plus a two-level occupancy bitmap emits buckets in
  // ascending order directly.  Rows where two indices land in the same
  // bucket fall back to the sort-and-sum construction, so duplicate values
  // accumulate in exactly the order the row path leaves them — outputs
  // stay bit-identical either way.  `acc` is intentionally uninitialized:
  // the bitmap gates every read.
  const uint32_t out_dim = out.dim;
  const bool use_dense =
      out_dim <= (1u << 22) && total_nnz * 64 >= static_cast<size_t>(out_dim);
  std::unique_ptr<double[]> acc;
  std::vector<uint64_t> occupied;
  std::vector<uint64_t> summary;
  if (use_dense) {
    acc.reset(new double[out_dim]);
    occupied.assign((out_dim + 63) / 64, 0);
    summary.assign((occupied.size() + 63) / 64, 0);
  }

  std::vector<std::pair<uint32_t, double>> entries;
  std::vector<std::pair<uint32_t, double>> sorted_entries;
  for (const SparseVector& x : features->features) {
    entries.clear();
    const auto& idx = x.indices();
    const auto& val = x.values();
    bool collision = false;
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t index = idx[k];
      uint32_t bucket;
      double sign;
      if (use_memo) {
        if (!memo_set[index]) {
          memo_set[index] = 1;
          memo_bucket[index] = BucketOf(index);
          memo_sign[index] = SignOf(index);
        }
        bucket = memo_bucket[index];
        sign = memo_sign[index];
      } else {
        bucket = BucketOf(index);
        sign = SignOf(index);
      }
      const double value = sign * val[k];
      entries.emplace_back(bucket, value);
      if (use_dense && !collision) {
        const size_t word = bucket >> 6;
        const uint64_t bit = uint64_t{1} << (bucket & 63);
        if (occupied[word] & bit) {
          collision = true;
        } else {
          occupied[word] |= bit;
          summary[word >> 6] |= uint64_t{1} << (word & 63);
          acc[bucket] = value;
        }
      }
    }
    if (use_dense && !collision) {
      sorted_entries.clear();
      for (size_t sw = 0; sw < summary.size(); ++sw) {
        uint64_t sword = summary[sw];
        while (sword != 0) {
          const size_t word = sw * 64 + __builtin_ctzll(sword);
          sword &= sword - 1;
          uint64_t bits = occupied[word];
          while (bits != 0) {
            const uint32_t bucket =
                static_cast<uint32_t>(word * 64 + __builtin_ctzll(bits));
            bits &= bits - 1;
            sorted_entries.emplace_back(bucket, acc[bucket]);
          }
        }
      }
      out.features.push_back(
          SparseVector::FromUnsortedInto(out_dim, &sorted_entries));
    } else {
      out.features.push_back(
          SparseVector::FromUnsortedInto(out_dim, &entries));
    }
    if (use_dense) {
      for (const auto& entry : entries) {
        occupied[entry.first >> 6] = 0;
        summary[entry.first >> 12] = 0;
      }
    }
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> FeatureHasher::Clone() const {
  return std::make_unique<FeatureHasher>(options_);
}

}  // namespace cdpipe
