#include "src/pipeline/feature_hasher.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/linalg/sparse_vector.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {
namespace {

/// 64-bit finalizer from MurmurHash3; good avalanche behaviour for integer
/// keys at negligible cost.
uint64_t MixHash(uint64_t key, uint64_t seed) {
  uint64_t h = key ^ seed;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Fused kernel: rewrites the vector block in place (entries + row offsets
/// swap through scratch buffers).  Mirrors the interpreted Transform's
/// arithmetic — same memo and dense-accumulator gates, same sort-and-sum
/// collapse semantics — so outputs are bit-identical.  The dense path here
/// goes further than the interpreted one: rows with two-way bucket
/// collisions stay dense (a two-way IEEE sum is commutative, hence
/// order-insensitive), and only three-way collisions or NaN values fall
/// back to the sorted collapse.  The bucket/sign memo lives in the
/// per-thread scratch and persists across blocks, chunks, and plan
/// recompiles (it depends only on the hasher's immutable config).
class HashVecStage final : public fusion::FusedStage {
 public:
  explicit HashVecStage(const FeatureHasher* hasher) : hasher_(hasher) {}

  const char* label() const override { return "feature_hasher"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::ExecScratch& s = *ctx.scratch;
    fusion::VecBlock& vec = s.vec;
    ctx.rows_scanned += vec.num_rows();
    const uint32_t in_dim = vec.dim;
    const uint32_t out_dim = hasher_->output_dim();
    const size_t total_nnz = vec.entries.size();
    const FeatureHasher::Options& opt = hasher_->options();

    const bool use_memo = in_dim <= (1u << 20) && total_nnz >= in_dim / 16;
    fusion::HasherMemo& memo = s.hasher_memo;
    if (use_memo &&
        !memo.Matches(opt.seed, opt.bits, opt.signed_hash, in_dim)) {
      memo.seed = opt.seed;
      memo.bits = opt.bits;
      memo.signed_hash = opt.signed_hash;
      memo.dim = in_dim;
      memo.packed.assign(in_dim, 0);
    }

    // Dense accumulator state.  `acc` cells are gated by the occupancy
    // bitmap, so stale values are never read; the bitmaps themselves hold
    // the all-zero invariant between rows (each row clears the words it
    // touched), so they only need re-zeroing when resized.
    const bool use_dense = out_dim <= (1u << 22) &&
                           total_nnz * 64 >= static_cast<size_t>(out_dim);
    if (use_dense) {
      const size_t words = (out_dim + 63) / 64;
      const size_t summary_words = (words + 63) / 64;
      if (s.acc.size() < out_dim) s.acc.resize(out_dim);
      if (s.occupied.size() != words) s.occupied.assign(words, 0);
      if (s.summary.size() != summary_words) {
        s.summary.assign(summary_words, 0);
      }
    }

    auto hash_of = [&](uint32_t index) -> std::pair<uint32_t, double> {
      if (use_memo) {
        uint64_t word = memo.packed[index];
        if ((word & fusion::HasherMemo::kSet) == 0) {
          word = fusion::HasherMemo::kSet | hasher_->BucketOf(index);
          if (hasher_->SignOf(index) < 0.0) {
            word |= fusion::HasherMemo::kNegative;
          }
          memo.packed[index] = word;
        }
        return {static_cast<uint32_t>(word),
                (word & fusion::HasherMemo::kNegative) != 0 ? -1.0 : 1.0};
      }
      return {hasher_->BucketOf(index), hasher_->SignOf(index)};
    };

    s.out_entries.clear();
    s.out_entries.reserve(total_nnz);
    std::vector<std::pair<uint32_t, double>>& row = s.row_entries;
    std::vector<uint32_t>& collided = s.collided;
    uint32_t start = 0;
    for (size_t r = 0; r < vec.num_rows(); ++r) {
      const uint32_t stop = vec.row_end[r];
      const size_t out_start = s.out_entries.size();
      bool sorted_path = !use_dense;
      if (use_dense) {
        collided.clear();
        bool bail = false;
        for (uint32_t k = start; k < stop; ++k) {
          const auto [bucket, sign] = hash_of(vec.entries[k].first);
          const double value = sign * vec.entries[k].second;
          const size_t word = bucket >> 6;
          const uint64_t bit = uint64_t{1} << (bucket & 63);
          if (s.occupied[word] & bit) {
            // Second entry in this bucket: a two-way IEEE sum is
            // commutative, so accumulating in arrival order is bit-identical
            // to the sorted collapse regardless of how the unstable sort
            // would have ordered the pair.  Three-way sums and NaN payloads
            // are order-sensitive — those rows rewind to the sorted path.
            if (std::isnan(s.acc[bucket]) || std::isnan(value) ||
                std::find(collided.begin(), collided.end(), bucket) !=
                    collided.end()) {
              bail = true;
              break;
            }
            collided.push_back(bucket);
            s.acc[bucket] += value;
          } else {
            s.occupied[word] |= bit;
            s.summary[word >> 6] |= uint64_t{1} << (word & 63);
            s.acc[bucket] = value;
          }
        }
        if (!bail) {
          // Emit in ascending bucket order straight off the occupancy
          // bitmaps, then restore the all-zero invariant by re-reading the
          // buckets just emitted (sequential over fresh cache lines).
          for (size_t sw = 0; sw < s.summary.size(); ++sw) {
            uint64_t sword = s.summary[sw];
            while (sword != 0) {
              const size_t word = sw * 64 + __builtin_ctzll(sword);
              sword &= sword - 1;
              uint64_t bits = s.occupied[word];
              while (bits != 0) {
                const uint32_t bucket =
                    static_cast<uint32_t>(word * 64 + __builtin_ctzll(bits));
                bits &= bits - 1;
                s.out_entries.emplace_back(bucket, s.acc[bucket]);
              }
            }
          }
          for (size_t k = out_start; k < s.out_entries.size(); ++k) {
            const uint32_t bucket = s.out_entries[k].first;
            s.occupied[bucket >> 6] = 0;
            s.summary[bucket >> 12] = 0;
          }
        } else {
          // Zero the partially built bitmaps (the summary covers every
          // touched word) before rebuilding the row on the sorted path.
          for (size_t sw = 0; sw < s.summary.size(); ++sw) {
            uint64_t sword = s.summary[sw];
            if (sword == 0) continue;
            s.summary[sw] = 0;
            while (sword != 0) {
              s.occupied[sw * 64 + __builtin_ctzll(sword)] = 0;
              sword &= sword - 1;
            }
          }
          sorted_path = true;
        }
      }
      if (sorted_path) {
        // Same collapse as the interpreted fallback: hash in input order,
        // sort the raw-order (bucket, signed value) list, sum duplicates
        // left to right.  Memo hits make the re-hash of a bailed row cheap.
        row.clear();
        for (uint32_t k = start; k < stop; ++k) {
          const auto [bucket, sign] = hash_of(vec.entries[k].first);
          row.emplace_back(bucket, sign * vec.entries[k].second);
        }
        SparseVector::SortAndCombineInto(&row);
        s.out_entries.insert(s.out_entries.end(), row.begin(), row.end());
      }
      vec.row_end[r] = static_cast<uint32_t>(s.out_entries.size());
      start = stop;
    }
    vec.entries.swap(s.out_entries);
    vec.dim = out_dim;
    return Status::OK();
  }

 private:
  const FeatureHasher* hasher_;
};

}  // namespace

FeatureHasher::FeatureHasher(Options options) : options_(options) {
  CDPIPE_CHECK_GT(options_.bits, 0u);
  CDPIPE_CHECK_LE(options_.bits, 30u);
}

uint32_t FeatureHasher::BucketOf(uint32_t index) const {
  return static_cast<uint32_t>(MixHash(index, options_.seed)) &
         (output_dim() - 1);
}

double FeatureHasher::SignOf(uint32_t index) const {
  if (!options_.signed_hash) return 1.0;
  // An independent bit of the mixed hash decides the sign.
  return (MixHash(index, options_.seed ^ 0x9E3779B97F4A7C15ULL) & 1u) != 0
             ? 1.0
             : -1.0;
}

Result<DataBatch> FeatureHasher::Transform(const DataBatch& batch) const {
  const auto* features = std::get_if<FeatureData>(&batch);
  if (features == nullptr) {
    return Status::FailedPrecondition(
        "feature_hasher expects a vectorized batch; place it after the "
        "parser / encoder");
  }
  FeatureData out;
  out.dim = output_dim();
  out.features.reserve(features->features.size());
  out.labels = features->labels;

  size_t total_nnz = 0;
  for (const SparseVector& x : features->features) total_nnz += x.nnz();

  // Per-batch memo of (bucket, signed unit) per input index: raw indices
  // repeat heavily across the rows of a batch, and the two hash mixes per
  // occurrence are the bulk of the per-entry cost.  Dense arrays gated on
  // the input dim so the memset amortizes over the batch.
  const uint32_t in_dim = features->dim;
  const bool use_memo = in_dim <= (1u << 20) && total_nnz >= in_dim / 16;
  std::vector<uint8_t> memo_set;
  std::vector<uint32_t> memo_bucket;
  std::vector<double> memo_sign;
  if (use_memo) {
    memo_set.assign(in_dim, 0);
    memo_bucket.resize(in_dim);
    memo_sign.resize(in_dim);
  }

  // Collision-free rows (the common case) skip the per-row sort: a dense
  // accumulator plus a two-level occupancy bitmap emits buckets in
  // ascending order directly.  Rows where two indices land in the same
  // bucket fall back to the sort-and-sum construction, so duplicate values
  // accumulate in exactly the order the row path leaves them — outputs
  // stay bit-identical either way.  `acc` is intentionally uninitialized:
  // the bitmap gates every read.
  const uint32_t out_dim = out.dim;
  const bool use_dense =
      out_dim <= (1u << 22) && total_nnz * 64 >= static_cast<size_t>(out_dim);
  std::unique_ptr<double[]> acc;
  std::vector<uint64_t> occupied;
  std::vector<uint64_t> summary;
  if (use_dense) {
    acc.reset(new double[out_dim]);
    occupied.assign((out_dim + 63) / 64, 0);
    summary.assign((occupied.size() + 63) / 64, 0);
  }

  std::vector<std::pair<uint32_t, double>> entries;
  std::vector<std::pair<uint32_t, double>> sorted_entries;
  for (const SparseVector& x : features->features) {
    entries.clear();
    const auto& idx = x.indices();
    const auto& val = x.values();
    bool collision = false;
    for (size_t k = 0; k < idx.size(); ++k) {
      const uint32_t index = idx[k];
      uint32_t bucket;
      double sign;
      if (use_memo) {
        if (!memo_set[index]) {
          memo_set[index] = 1;
          memo_bucket[index] = BucketOf(index);
          memo_sign[index] = SignOf(index);
        }
        bucket = memo_bucket[index];
        sign = memo_sign[index];
      } else {
        bucket = BucketOf(index);
        sign = SignOf(index);
      }
      const double value = sign * val[k];
      entries.emplace_back(bucket, value);
      if (use_dense && !collision) {
        const size_t word = bucket >> 6;
        const uint64_t bit = uint64_t{1} << (bucket & 63);
        if (occupied[word] & bit) {
          collision = true;
        } else {
          occupied[word] |= bit;
          summary[word >> 6] |= uint64_t{1} << (word & 63);
          acc[bucket] = value;
        }
      }
    }
    if (use_dense && !collision) {
      sorted_entries.clear();
      for (size_t sw = 0; sw < summary.size(); ++sw) {
        uint64_t sword = summary[sw];
        while (sword != 0) {
          const size_t word = sw * 64 + __builtin_ctzll(sword);
          sword &= sword - 1;
          uint64_t bits = occupied[word];
          while (bits != 0) {
            const uint32_t bucket =
                static_cast<uint32_t>(word * 64 + __builtin_ctzll(bits));
            bits &= bits - 1;
            sorted_entries.emplace_back(bucket, acc[bucket]);
          }
        }
      }
      out.features.push_back(
          SparseVector::FromUnsortedInto(out_dim, &sorted_entries));
    } else {
      out.features.push_back(
          SparseVector::FromUnsortedInto(out_dim, &entries));
    }
    if (use_dense) {
      for (const auto& entry : entries) {
        occupied[entry.first >> 6] = 0;
        summary[entry.first >> 12] = 0;
      }
    }
  }
  return DataBatch(std::move(out));
}

Status FeatureHasher::Fuse(fusion::PlanBuilder* plan) const {
  if (plan->repr() != fusion::PlanBuilder::Repr::kVec) {
    // Same precondition as Transform; the interpreted path owns reporting
    // the misplacement error.
    return Status::FailedPrecondition(
        "feature_hasher expects a vectorized batch; place it after the "
        "parser / encoder");
  }
  plan->AddStage(std::make_unique<HashVecStage>(this));
  plan->BeginVec(output_dim());
  return Status::OK();
}

std::unique_ptr<PipelineComponent> FeatureHasher::Clone() const {
  return std::make_unique<FeatureHasher>(options_);
}

}  // namespace cdpipe
