#include "src/pipeline/feature_hasher.h"

#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace cdpipe {
namespace {

/// 64-bit finalizer from MurmurHash3; good avalanche behaviour for integer
/// keys at negligible cost.
uint64_t MixHash(uint64_t key, uint64_t seed) {
  uint64_t h = key ^ seed;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

FeatureHasher::FeatureHasher(Options options) : options_(options) {
  CDPIPE_CHECK_GT(options_.bits, 0u);
  CDPIPE_CHECK_LE(options_.bits, 30u);
}

uint32_t FeatureHasher::BucketOf(uint32_t index) const {
  return static_cast<uint32_t>(MixHash(index, options_.seed)) &
         (output_dim() - 1);
}

double FeatureHasher::SignOf(uint32_t index) const {
  if (!options_.signed_hash) return 1.0;
  // An independent bit of the mixed hash decides the sign.
  return (MixHash(index, options_.seed ^ 0x9E3779B97F4A7C15ULL) & 1u) != 0
             ? 1.0
             : -1.0;
}

Result<DataBatch> FeatureHasher::Transform(const DataBatch& batch) const {
  const auto* features = std::get_if<FeatureData>(&batch);
  if (features == nullptr) {
    return Status::FailedPrecondition(
        "feature_hasher expects a vectorized batch; place it after the "
        "parser / encoder");
  }
  FeatureData out;
  out.dim = output_dim();
  out.features.reserve(features->features.size());
  out.labels = features->labels;
  for (const SparseVector& x : features->features) {
    std::vector<std::pair<uint32_t, double>> entries;
    entries.reserve(x.nnz());
    const auto& idx = x.indices();
    const auto& val = x.values();
    for (size_t k = 0; k < idx.size(); ++k) {
      entries.emplace_back(BucketOf(idx[k]), SignOf(idx[k]) * val[k]);
    }
    out.features.push_back(
        SparseVector::FromUnsorted(out.dim, std::move(entries)));
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> FeatureHasher::Clone() const {
  return std::make_unique<FeatureHasher>(options_);
}

}  // namespace cdpipe
