#ifndef CDPIPE_PIPELINE_FEATURE_HASHER_H_
#define CDPIPE_PIPELINE_FEATURE_HASHER_H_

#include <memory>
#include <string>

#include "src/pipeline/component.h"

namespace cdpipe {

/// The hashing trick: maps a high-dimensional sparse feature space into
/// 2^`bits` buckets with a signed hash, so the model's weight vector has a
/// fixed, bounded dimension regardless of how many raw features exist or
/// appear over time.  Stateless, hence trivially compatible with online
/// statistics computation; output stays sparse, preserving the O(p) storage
/// bound of §3.2.1.
class FeatureHasher : public PipelineComponent {
 public:
  struct Options {
    /// Output dimension is 2^bits.
    uint32_t bits = 18;
    /// Mixes the hash; two hashers with different seeds are independent.
    uint64_t seed = 0x5bd1e995;
    /// Multiply each value by a ±1 hash sign (reduces collision bias).
    bool signed_hash = true;
  };

  FeatureHasher() : FeatureHasher(Options()) {}
  explicit FeatureHasher(Options options);

  std::string name() const override { return "feature_hasher"; }
  ComponentKind kind() const override {
    return ComponentKind::kFeatureExtraction;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  uint32_t output_dim() const { return 1u << options_.bits; }
  const Options& options() const { return options_; }

  /// Bucket for a raw feature index (exposed for tests).
  uint32_t BucketOf(uint32_t index) const;
  /// Sign for a raw feature index; +1.0 when signed hashing is off.
  double SignOf(uint32_t index) const;

 private:
  Options options_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_FEATURE_HASHER_H_
