#ifndef CDPIPE_PIPELINE_ZSCORE_ANOMALY_DETECTOR_H_
#define CDPIPE_PIPELINE_ZSCORE_ANOMALY_DETECTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Native anomaly detection (the paper's §7 future work, alongside concept
/// drift): instead of hand-written range predicates (AnomalyFilter), this
/// component *learns* per-column location/scale statistics incrementally and
/// drops rows whose configured columns deviate more than `threshold`
/// standard deviations from the running mean.
///
/// The statistics (count, mean, M2 — Welford) are incrementally
/// maintainable, so the component fully participates in online statistics
/// computation (§3.1) and checkpointing.  Until `min_observations` values
/// have been seen for a column, that column never votes to drop a row (a
/// cold detector must not discard the data it needs to calibrate).
class ZScoreAnomalyDetector : public PipelineComponent {
 public:
  struct Options {
    std::vector<std::string> columns;
    double threshold = 4.0;
    int64_t min_observations = 100;
  };

  explicit ZScoreAnomalyDetector(Options options);

  std::string name() const override { return "zscore_anomaly_detector"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }
  bool is_stateful() const override { return true; }

  Status Update(const DataBatch& batch) override;
  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Result<DataBatch> TransformOwned(DataBatch&& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  void Reset() override;
  std::unique_ptr<PipelineComponent> Clone() const override;
  std::string DescribeState() const override;
  Status SaveState(Serializer* out) const override;
  Status LoadState(Deserializer* in) override;

  /// Current statistics for the i-th configured column.
  double MeanOf(size_t column) const;
  double StdDevOf(size_t column) const;
  int64_t CountOf(size_t column) const;
  /// Rows dropped as anomalous since construction.
  size_t num_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Adds to the dropped-row counter.  Fused kernels report their drops
  /// here so the counter stays in step with the interpreted path.
  void RecordDropped(size_t n) const {
    dropped_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  struct Welford {
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void Add(double x) {
      ++count;
      const double delta = x - mean;
      mean += delta / static_cast<double>(count);
      m2 += delta * (x - mean);
    }
    double Variance() const {
      return count > 1 ? m2 / static_cast<double>(count) : 0.0;
    }
  };

  /// Column-major outlier mask (1 = keep); shared by Transform and
  /// TransformOwned.
  Result<std::vector<uint8_t>> KeepMask(const TableData& table) const;

  Options options_;
  std::vector<Welford> stats_;  ///< parallel to options_.columns
  mutable std::atomic<size_t> dropped_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_ZSCORE_ANOMALY_DETECTOR_H_
