#ifndef CDPIPE_PIPELINE_ONE_HOT_ENCODER_H_
#define CDPIPE_PIPELINE_ONE_HOT_ENCODER_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Vectorizing encoder: converts a table batch into sparse feature vectors
/// made of the configured numeric columns followed by one-hot blocks for the
/// configured categorical columns.
///
/// The per-column dictionary (value → index) is the incrementally
/// maintainable hash-table statistic the paper names in §3.1.  Each block
/// has a fixed capacity so feature indices are stable over the lifetime of
/// the deployment; once a dictionary is full, unseen values fall back to a
/// hashed slot within the block (so late-arriving categories still carry
/// signal instead of being dropped).
///
/// Output is sparse: each row has |numeric| + |categorical| non-zeros, which
/// is what keeps one-hot encoding O(p) instead of O(p²) (§3.2.1).
class OneHotEncoder : public PipelineComponent {
 public:
  struct CategoricalColumn {
    std::string name;
    /// Capacity of this column's one-hot block.
    uint32_t max_cardinality = 1024;
  };

  struct Options {
    std::vector<std::string> numeric_columns;
    std::vector<CategoricalColumn> categorical_columns;
    std::string label_column;
  };

  explicit OneHotEncoder(Options options);

  std::string name() const override { return "one_hot_encoder"; }
  ComponentKind kind() const override {
    return ComponentKind::kFeatureExtraction;
  }
  bool is_stateful() const override { return true; }

  Status Update(const DataBatch& batch) override;
  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  void Reset() override;
  std::unique_ptr<PipelineComponent> Clone() const override;
  std::string DescribeState() const override;
  Status SaveState(Serializer* out) const override;
  Status LoadState(Deserializer* in) override;

  /// Total output dimension: numeric columns + sum of block capacities.
  uint32_t output_dim() const { return output_dim_; }
  /// Number of distinct values currently in column c's dictionary.
  size_t CardinalityOf(size_t c) const { return dictionaries_[c].size(); }

  /// Index of `value` within column c's block: dictionary slot when known,
  /// hashed slot when the value is unknown or the dictionary is full.
  /// Public because the fused kernel resolves slots through the same
  /// lookup (dictionaries are state, so the plan holding the kernel is
  /// invalidated whenever they change).
  uint32_t SlotOf(size_t c, std::string_view value) const;

 private:
  /// Transparent hash so arena-backed `string_view` cells can probe the
  /// dictionaries without materializing a std::string per lookup.
  /// std::hash<string_view> and std::hash<string> agree on equal bytes, so
  /// the hashed-slot fallback is unchanged from the std::string days.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view v) const {
      return std::hash<std::string_view>{}(v);
    }
  };
  using Dictionary =
      std::unordered_map<std::string, uint32_t, StringHash, std::equal_to<>>;

  Options options_;
  uint32_t output_dim_ = 0;
  std::vector<uint32_t> block_offsets_;
  std::vector<Dictionary> dictionaries_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_ONE_HOT_ENCODER_H_
