#include "src/pipeline/input_parser.h"

#include <cmath>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {
namespace {

/// Extracts the single "raw" string column the parser consumes.
Result<const TableData*> ExpectRawTable(const DataBatch& batch) {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "input_parser expects a table batch (is it the first component?)");
  }
  if (table->schema == nullptr || table->schema->num_fields() != 1 ||
      table->schema->field(0).type != ValueType::kString) {
    return Status::FailedPrecondition(
        "input_parser expects a single string column");
  }
  return table;
}

}  // namespace

InputParser::InputParser(Options options) : options_(std::move(options)) {
  if (options_.format == Format::kLibSvm) {
    CDPIPE_CHECK_GT(options_.feature_dim, 0u);
  } else {
    CDPIPE_CHECK(options_.csv_schema != nullptr);
  }
}

Result<DataBatch> InputParser::Transform(const DataBatch& batch) const {
  CDPIPE_ASSIGN_OR_RETURN(const TableData* table, ExpectRawTable(batch));
  if (options_.format == Format::kLibSvm) return TransformLibSvm(*table);
  return TransformCsv(*table);
}

Result<DataBatch> InputParser::TransformLibSvm(const TableData& table) const {
  FeatureData out;
  out.dim = options_.feature_dim;
  out.features.reserve(table.rows.size());
  out.labels.reserve(table.rows.size());

  for (const Row& row : table.rows) {
    const std::string& line = row[0].string_value();
    const std::vector<std::string_view> tokens = SplitString(line, ' ');
    bool bad = tokens.empty();
    double label = 0.0;
    std::vector<std::pair<uint32_t, double>> entries;
    if (!bad) {
      Result<double> parsed_label = ParseDouble(tokens[0]);
      if (parsed_label.ok()) {
        label = *parsed_label;
        if (options_.binarize_labels) label = label > 0.0 ? 1.0 : -1.0;
      } else {
        bad = true;
      }
    }
    for (size_t t = 1; !bad && t < tokens.size(); ++t) {
      std::string_view token = StripWhitespace(tokens[t]);
      if (token.empty()) continue;
      const size_t colon = token.find(':');
      if (colon == std::string_view::npos) {
        bad = true;
        break;
      }
      Result<int64_t> index = ParseInt64(token.substr(0, colon));
      std::string_view value_text = token.substr(colon + 1);
      double value = 0.0;
      if (value_text == "nan") {
        value = std::numeric_limits<double>::quiet_NaN();
      } else {
        Result<double> parsed = ParseDouble(value_text);
        if (!parsed.ok()) {
          bad = true;
          break;
        }
        value = *parsed;
      }
      if (!index.ok() || *index < 0 ||
          *index >= static_cast<int64_t>(options_.feature_dim)) {
        bad = true;
        break;
      }
      entries.emplace_back(static_cast<uint32_t>(*index), value);
    }
    if (bad) {
      if (options_.strict) {
        return Status::InvalidArgument("malformed libsvm record: '" + line +
                                       "'");
      }
      malformed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.features.push_back(
        SparseVector::FromUnsorted(options_.feature_dim, std::move(entries)));
    out.labels.push_back(label);
  }
  return DataBatch(std::move(out));
}

Result<DataBatch> InputParser::TransformCsv(const TableData& table) const {
  const Schema& schema = *options_.csv_schema;
  TableData out;
  out.schema = options_.csv_schema;
  out.rows.reserve(table.rows.size());

  for (const Row& row : table.rows) {
    const std::string& line = row[0].string_value();
    const std::vector<std::string_view> fields =
        SplitString(line, options_.delimiter);
    if (fields.size() != schema.num_fields()) {
      if (options_.strict) {
        return Status::InvalidArgument(
            "csv record has " + std::to_string(fields.size()) +
            " fields, schema expects " + std::to_string(schema.num_fields()));
      }
      malformed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Row parsed;
    parsed.reserve(fields.size());
    bool bad = false;
    for (size_t i = 0; i < fields.size() && !bad; ++i) {
      const std::string_view text = StripWhitespace(fields[i]);
      if (text.empty()) {
        parsed.push_back(Value::Null());
        continue;
      }
      switch (schema.field(i).type) {
        case ValueType::kDouble: {
          Result<double> v = ParseDouble(text);
          if (v.ok()) {
            parsed.push_back(Value::Double(*v));
          } else {
            bad = true;
          }
          break;
        }
        case ValueType::kInt64: {
          Result<int64_t> v = ParseInt64(text);
          if (v.ok()) {
            parsed.push_back(Value::Int64(*v));
          } else {
            bad = true;
          }
          break;
        }
        case ValueType::kTimestamp: {
          Result<int64_t> v = ParseDateTime(text);
          if (v.ok()) {
            parsed.push_back(Value::Timestamp(*v));
          } else {
            bad = true;
          }
          break;
        }
        case ValueType::kString:
          parsed.push_back(Value::String(std::string(text)));
          break;
        case ValueType::kNull:
          parsed.push_back(Value::Null());
          break;
      }
    }
    if (bad) {
      if (options_.strict) {
        return Status::InvalidArgument("malformed csv record: '" + line + "'");
      }
      malformed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.rows.push_back(std::move(parsed));
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> InputParser::Clone() const {
  auto out = std::make_unique<InputParser>(options_);
  out->malformed_.store(malformed_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return out;
}

}  // namespace cdpipe
