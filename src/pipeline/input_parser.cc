#include "src/pipeline/input_parser.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {
namespace {

/// Extracts the single "raw" string column the parser consumes.
Result<const TableData*> ExpectRawTable(const DataBatch& batch) {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "input_parser expects a table batch (is it the first component?)");
  }
  if (table->schema() == nullptr || table->schema()->num_fields() != 1 ||
      table->schema()->field(0).type != ValueType::kString) {
    return Status::FailedPrecondition(
        "input_parser expects a single string column");
  }
  return table;
}

/// Single-pass scan of one well-formed libsvm record ("label idx:val ...").
/// Returns false on anything unusual (tabs, signed indices, malformed
/// tokens) *without* a verdict — the caller re-parses the row with the
/// token path, which owns the accept/reject decision.  For rows both paths
/// accept, the results are bit-identical: the same from_chars conversions
/// see the same character ranges.
bool ScanLibSvmRow(std::string_view line, uint32_t feature_dim,
                   std::vector<std::pair<uint32_t, double>>* entries,
                   double* label) {
  const char* p = line.data();
  const char* const end = p + line.size();
  if (p == end) return false;
  if (*p == '+') ++p;  // "+1" is the canonical positive label
  const auto label_result = std::from_chars(p, end, *label);
  if (label_result.ec != std::errc()) return false;
  p = label_result.ptr;
  while (p != end) {
    if (*p != ' ') return false;
    ++p;
    if (p == end || *p == ' ') continue;  // empty tokens are skipped
    uint32_t index = 0;
    const auto index_result = std::from_chars(p, end, index);
    if (index_result.ec != std::errc() || index_result.ptr == end ||
        *index_result.ptr != ':' || index >= feature_dim) {
      return false;
    }
    p = index_result.ptr + 1;
    double value = 0.0;
    // "nan" markers map to the imputer's quiet NaN exactly like the token
    // path; anything merely starting with those letters falls through to
    // from_chars and, if a suffix remains, to the fallback.
    if (end - p >= 3 && p[0] == 'n' && p[1] == 'a' && p[2] == 'n' &&
        (end - p == 3 || p[3] == ' ')) {
      value = std::numeric_limits<double>::quiet_NaN();
      p += 3;
    } else {
      if (p != end && *p == '+') ++p;  // mirrors ParseDouble
      const auto value_result = std::from_chars(p, end, value);
      if (value_result.ec != std::errc()) return false;
      p = value_result.ptr;
    }
    entries->emplace_back(index, value);
  }
  return true;
}

/// Fused libsvm parse: raw records straight into the vector block.  Rows
/// come from the exact per-row kernel the interpreted path runs; the only
/// difference is where the collapsed entries land (the flat block instead
/// of a SparseVector each).
class LibSvmParseStage final : public fusion::FusedStage {
 public:
  explicit LibSvmParseStage(const InputParser* parser) : parser_(parser) {}

  const char* label() const override { return "parse_libsvm"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::ExecScratch& s = *ctx.scratch;
    fusion::VecBlock& vec = s.vec;
    const uint32_t dim = parser_->options().feature_dim;
    vec.dim = dim;
    vec.entries.clear();
    vec.row_end.clear();
    vec.labels.clear();
    vec.saw_nan = false;
    vec.nan_rows.clear();
    const size_t rows = ctx.raw_rows();
    vec.row_end.reserve(rows);
    vec.labels.reserve(rows);
    ctx.rows_scanned += rows;
    for (size_t r = ctx.begin; r < ctx.end; ++r) {
      const std::string_view line = (*ctx.records)[r];
      double label = 0.0;
      CDPIPE_ASSIGN_OR_RETURN(
          InputParser::RowVerdict verdict,
          parser_->ParseLibSvmRecord(line, &s.row_entries, &label, &s.tokens));
      if (verdict == InputParser::RowVerdict::kMalformed) continue;
      SparseVector::SortAndCombineInto(&s.row_entries);
      // Indices are < dim by the parser contract (both scan and token paths
      // reject out-of-range indices), so the collapsed row appends as one
      // bulk copy; only the NaN sentinel needs a per-entry look.
      for (const auto& [index, value] : s.row_entries) {
        if (std::isnan(value)) {
          vec.saw_nan = true;
          vec.nan_rows.push_back(static_cast<uint32_t>(vec.row_end.size()));
          break;
        }
      }
      vec.entries.insert(vec.entries.end(), s.row_entries.begin(),
                         s.row_entries.end());
      vec.row_end.push_back(static_cast<uint32_t>(vec.entries.size()));
      vec.labels.push_back(label);
    }
    return Status::OK();
  }

 private:
  const InputParser* parser_;
};

/// Fused CSV parse: raw records into block columns (flat typed vectors with
/// byte null masks; string cells borrow the raw records).
class CsvParseStage final : public fusion::FusedStage {
 public:
  explicit CsvParseStage(const InputParser* parser) : parser_(parser) {}

  const char* label() const override { return "parse_csv"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::ExecScratch& s = *ctx.scratch;
    fusion::TableBlock& table = s.table;
    const Schema& schema = *parser_->options().csv_schema;
    const size_t num_fields = schema.num_fields();
    if (table.cols.size() < num_fields) table.cols.resize(num_fields);
    for (size_t i = 0; i < num_fields; ++i) {
      table.cols[i].Reset(schema.field(i).type);
    }
    // Cell scratch is per Run, not per stage: one plan is shared by
    // concurrent shards.
    std::vector<InputParser::CsvCell> cells(num_fields);
    const size_t rows = ctx.raw_rows();
    ctx.rows_scanned += rows;
    size_t appended = 0;
    for (size_t r = ctx.begin; r < ctx.end; ++r) {
      const std::string_view line = (*ctx.records)[r];
      CDPIPE_ASSIGN_OR_RETURN(
          InputParser::RowVerdict verdict,
          parser_->ParseCsvRecord(line, &s.tokens, &cells));
      if (verdict == InputParser::RowVerdict::kMalformed) continue;
      for (size_t i = 0; i < num_fields; ++i) {
        fusion::BlockColumn& col = table.cols[i];
        const InputParser::CsvCell& cell = cells[i];
        col.null.push_back(cell.null ? 1 : 0);
        if (cell.null) col.any_null = true;
        switch (schema.field(i).type) {
          case ValueType::kDouble:
            col.d.push_back(cell.null ? 0.0 : cell.d);
            break;
          case ValueType::kInt64:
          case ValueType::kTimestamp:
            col.i.push_back(cell.null ? 0 : cell.i);
            break;
          case ValueType::kString:
            col.s.push_back(cell.s);
            break;
          case ValueType::kNull:
            break;
        }
      }
      ++appended;
    }
    table.num_rows = appended;
    table.live_rows = appended;
    table.keep.assign(appended, 1);
    return Status::OK();
  }

 private:
  const InputParser* parser_;
};

}  // namespace

InputParser::InputParser(Options options) : options_(std::move(options)) {
  if (options_.format == Format::kLibSvm) {
    CDPIPE_CHECK_GT(options_.feature_dim, 0u);
  } else {
    CDPIPE_CHECK(options_.csv_schema != nullptr);
  }
}

Result<DataBatch> InputParser::Transform(const DataBatch& batch) const {
  CDPIPE_ASSIGN_OR_RETURN(const TableData* table, ExpectRawTable(batch));
  if (options_.format == Format::kLibSvm) return TransformLibSvm(*table);
  return TransformCsv(*table);
}

Result<InputParser::RowVerdict> InputParser::ParseLibSvmRecord(
    std::string_view line, std::vector<std::pair<uint32_t, double>>* entries,
    double* label, std::vector<std::string_view>* tokens) const {
  entries->clear();
  if (ScanLibSvmRow(line, options_.feature_dim, entries, label)) {
    if (options_.binarize_labels) *label = *label > 0.0 ? 1.0 : -1.0;
    return RowVerdict::kOk;
  }
  // Fallback for rows the scanner declined: the token path decides whether
  // the record is well-formed or counted as malformed.
  SplitStringInto(line, ' ', tokens);
  entries->clear();
  bool bad = tokens->empty();
  if (!bad) {
    Result<double> parsed_label = ParseDouble((*tokens)[0]);
    if (parsed_label.ok()) {
      *label = *parsed_label;
      if (options_.binarize_labels) *label = *label > 0.0 ? 1.0 : -1.0;
    } else {
      bad = true;
    }
  }
  for (size_t t = 1; !bad && t < tokens->size(); ++t) {
    std::string_view token = StripWhitespace((*tokens)[t]);
    if (token.empty()) continue;
    const size_t colon = token.find(':');
    if (colon == std::string_view::npos) {
      bad = true;
      break;
    }
    Result<int64_t> index = ParseInt64(token.substr(0, colon));
    std::string_view value_text = token.substr(colon + 1);
    double value = 0.0;
    if (value_text == "nan") {
      value = std::numeric_limits<double>::quiet_NaN();
    } else {
      Result<double> parsed = ParseDouble(value_text);
      if (!parsed.ok()) {
        bad = true;
        break;
      }
      value = *parsed;
    }
    if (!index.ok() || *index < 0 ||
        *index >= static_cast<int64_t>(options_.feature_dim)) {
      bad = true;
      break;
    }
    entries->emplace_back(static_cast<uint32_t>(*index), value);
  }
  if (bad) {
    if (options_.strict) {
      return Status::InvalidArgument("malformed libsvm record: '" +
                                     std::string(line) + "'");
    }
    malformed_.fetch_add(1, std::memory_order_relaxed);
    return RowVerdict::kMalformed;
  }
  return RowVerdict::kOk;
}

Result<DataBatch> InputParser::TransformLibSvm(const TableData& table) const {
  const Column& raw = table.column(0);
  const size_t num_rows = table.num_rows();

  FeatureData out;
  out.dim = options_.feature_dim;
  out.features.reserve(num_rows);
  out.labels.reserve(num_rows);

  // Per-batch scratch reused across rows: the token views of the current
  // line and its (index, value) entries.
  std::vector<std::string_view> tokens;
  std::vector<std::pair<uint32_t, double>> entries;

  for (size_t r = 0; r < num_rows; ++r) {
    const std::string_view line = raw.StringAt(r);
    double label = 0.0;
    CDPIPE_ASSIGN_OR_RETURN(RowVerdict verdict,
                            ParseLibSvmRecord(line, &entries, &label, &tokens));
    if (verdict == RowVerdict::kMalformed) continue;
    out.features.push_back(
        SparseVector::FromUnsortedInto(options_.feature_dim, &entries));
    out.labels.push_back(label);
  }
  return DataBatch(std::move(out));
}

Result<InputParser::RowVerdict> InputParser::ParseCsvRecord(
    std::string_view line, std::vector<std::string_view>* fields,
    std::vector<CsvCell>* cells) const {
  const Schema& schema = *options_.csv_schema;
  const size_t num_fields = schema.num_fields();
  SplitStringInto(line, options_.delimiter, fields);
  if (fields->size() != num_fields) {
    if (options_.strict) {
      return Status::InvalidArgument(
          "csv record has " + std::to_string(fields->size()) +
          " fields, schema expects " + std::to_string(num_fields));
    }
    malformed_.fetch_add(1, std::memory_order_relaxed);
    return RowVerdict::kMalformed;
  }
  bool bad = false;
  for (size_t i = 0; i < num_fields && !bad; ++i) {
    CsvCell& cell = (*cells)[i];
    cell.null = false;
    const std::string_view text = StripWhitespace((*fields)[i]);
    if (text.empty()) {
      cell.null = true;
      continue;
    }
    switch (schema.field(i).type) {
      case ValueType::kDouble:
        if (!ParseDoubleFast(text, &cell.d)) bad = true;
        break;
      case ValueType::kInt64:
        if (!ParseInt64Fast(text, &cell.i)) bad = true;
        break;
      case ValueType::kTimestamp:
        if (!ParseDateTimeFast(text, &cell.i)) bad = true;
        break;
      case ValueType::kString:
        cell.s = text;
        break;
      case ValueType::kNull:
        cell.null = true;
        break;
    }
  }
  if (bad) {
    if (options_.strict) {
      return Status::InvalidArgument("malformed csv record: '" +
                                     std::string(line) + "'");
    }
    malformed_.fetch_add(1, std::memory_order_relaxed);
    return RowVerdict::kMalformed;
  }
  return RowVerdict::kOk;
}

Result<DataBatch> InputParser::TransformCsv(const TableData& table) const {
  const Schema& schema = *options_.csv_schema;
  const Column& raw = table.column(0);
  const size_t num_rows = table.num_rows();
  const size_t num_fields = schema.num_fields();

  TableData out(options_.csv_schema);
  out.ReserveRows(num_rows);

  // Per-batch scratch: field views of the current line and its parsed
  // cells, appended to the output columns only once the record is known to
  // be well-formed.
  std::vector<std::string_view> fields;
  std::vector<CsvCell> cells(num_fields);

  for (size_t r = 0; r < num_rows; ++r) {
    const std::string_view line = raw.StringAt(r);
    CDPIPE_ASSIGN_OR_RETURN(RowVerdict verdict,
                            ParseCsvRecord(line, &fields, &cells));
    if (verdict == RowVerdict::kMalformed) continue;
    for (size_t i = 0; i < num_fields; ++i) {
      Column& column = out.mutable_column(i);
      const CsvCell& cell = cells[i];
      if (cell.null) {
        column.AppendNull();
        continue;
      }
      switch (schema.field(i).type) {
        case ValueType::kDouble:
          column.AppendDouble(cell.d);
          break;
        case ValueType::kInt64:
        case ValueType::kTimestamp:
          column.AppendInt64(cell.i);
          break;
        case ValueType::kString:
          column.AppendString(cell.s);
          break;
        case ValueType::kNull:
          break;
      }
    }
    CDPIPE_CHECK(out.CommitAppendedRow());
  }
  return DataBatch(std::move(out));
}

Status InputParser::Fuse(fusion::PlanBuilder* plan) const {
  // The fused chain replays WrapRaw's contract straight off the raw
  // records, so the parser must sit at the raw entry and the entry schema
  // must be the single "raw" string column.
  const Schema& entry = plan->entry_schema();
  if (plan->repr() != fusion::PlanBuilder::Repr::kRaw ||
      entry.num_fields() != 1 || entry.field(0).type != ValueType::kString) {
    return Status::FailedPrecondition(
        "input_parser fuses only at the raw entry");
  }
  if (options_.format == Format::kLibSvm) {
    plan->BeginVec(options_.feature_dim);
    plan->AddStage(std::make_unique<LibSvmParseStage>(this));
    return Status::OK();
  }
  CDPIPE_RETURN_NOT_OK(plan->BeginTable(options_.csv_schema));
  plan->AddStage(std::make_unique<CsvParseStage>(this));
  return Status::OK();
}

std::unique_ptr<PipelineComponent> InputParser::Clone() const {
  auto out = std::make_unique<InputParser>(options_);
  out->malformed_.store(malformed_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return out;
}

}  // namespace cdpipe
