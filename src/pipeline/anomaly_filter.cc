#include "src/pipeline/anomaly_filter.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

namespace {

/// Tests one value against a rule's bounds.  Shared by the interpreted
/// predicate and the fused kernel so both evaluate the exact same
/// comparisons (NaN fails every bound and is dropped on both paths).
inline bool InRange(double d, const AnomalyFilter::Rule& rule) {
  const bool above = rule.min_exclusive ? d > rule.min : d >= rule.min;
  const bool below = rule.max_exclusive ? d < rule.max : d <= rule.max;
  return above && below;
}

/// Builds the interpreted-path predicate for a rule conjunction.  Each rule
/// only ever clears keep bits, so evaluation order between rules does not
/// matter.
AnomalyFilter::Predicate MakeRulePredicate(
    std::vector<AnomalyFilter::Rule> rules) {
  return [rules = std::move(rules)](const TableData& table,
                                    std::vector<uint8_t>* keep) -> Status {
    for (const AnomalyFilter::Rule& rule : rules) {
      CDPIPE_ASSIGN_OR_RETURN(size_t idx,
                              table.schema()->FieldIndex(rule.column));
      CDPIPE_ASSIGN_OR_RETURN(
          NumericColumnView view,
          NumericColumnView::Of(table.column(idx), rule.column));
      const size_t rows = view.size();
      for (size_t r = 0; r < rows; ++r) {
        if ((*keep)[r] == 0) continue;
        if (view.IsNull(r) || !InRange(view[r], rule)) (*keep)[r] = 0;
      }
    }
    return Status::OK();
  };
}

/// Fused kernel for a rule filter: flips keep bits on the shared table
/// block instead of materializing a filtered table.  Downstream stages see
/// the same surviving row set, in the same order, as the interpreted
/// path's Filter().
class FilterTableStage final : public fusion::FusedStage {
 public:
  struct CompiledRule {
    size_t slot;
    AnomalyFilter::Rule rule;
  };

  FilterTableStage(const AnomalyFilter* filter, std::vector<CompiledRule> rules)
      : filter_(filter), rules_(std::move(rules)) {}

  const char* label() const override { return "anomaly_filter"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    ctx.rows_scanned += table.live_rows;
    size_t dropped = 0;
    for (const CompiledRule& cr : rules_) {
      const fusion::BlockColumn& col = table.cols[cr.slot];
      for (size_t r = 0; r < table.num_rows; ++r) {
        if (table.keep[r] == 0) continue;
        if (col.IsNull(r) || !InRange(col.NumericAt(r), cr.rule)) {
          table.keep[r] = 0;
          --table.live_rows;
          ++dropped;
        }
      }
    }
    if (dropped > 0) filter_->RecordDropped(dropped);
    return Status::OK();
  }

 private:
  const AnomalyFilter* filter_;
  std::vector<CompiledRule> rules_;
};

}  // namespace

AnomalyFilter::AnomalyFilter(std::string rule_name, Predicate keep)
    : rule_name_(std::move(rule_name)), keep_(std::move(keep)) {
  CDPIPE_CHECK(keep_ != nullptr);
}

AnomalyFilter::AnomalyFilter(std::string rule_name, std::vector<Rule> rules)
    : rule_name_(std::move(rule_name)),
      keep_(MakeRulePredicate(rules)),
      rules_(std::move(rules)) {}

std::unique_ptr<AnomalyFilter> AnomalyFilter::KeepInRange(
    const std::string& column, double min, double max) {
  std::vector<Rule> rules;
  rules.push_back(Rule{column, min, max, /*min_exclusive=*/false,
                       /*max_exclusive=*/false});
  return std::make_unique<AnomalyFilter>(
      StrFormat("%s in [%g, %g]", column.c_str(), min, max), std::move(rules));
}

Result<DataBatch> AnomalyFilter::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition("anomaly_filter expects a table batch");
  }
  std::vector<uint8_t> keep(table->num_rows(), 1);
  CDPIPE_RETURN_NOT_OK(keep_(*table, &keep));
  size_t kept = 0;
  for (uint8_t k : keep) kept += k != 0;
  const size_t dropped = table->num_rows() - kept;
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  if (dropped == 0) {
    return DataBatch(*table);
  }
  return DataBatch(table->Filter(keep));
}

Result<DataBatch> AnomalyFilter::TransformOwned(DataBatch&& batch) const {
  auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition("anomaly_filter expects a table batch");
  }
  std::vector<uint8_t> keep(table->num_rows(), 1);
  CDPIPE_RETURN_NOT_OK(keep_(*table, &keep));
  size_t kept = 0;
  for (uint8_t k : keep) kept += k != 0;
  const size_t dropped = table->num_rows() - kept;
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  if (dropped == 0) {
    return std::move(batch);  // nothing to drop: pass the batch through
  }
  return DataBatch(table->Filter(keep));
}

Status AnomalyFilter::Fuse(fusion::PlanBuilder* plan) const {
  if (rules_.empty()) {
    // Custom predicates are opaque std::functions; only the declarative
    // rule form compiles into a block kernel.
    return Status::Unimplemented(
        "anomaly_filter with a custom predicate cannot fuse");
  }
  if (plan->repr() != fusion::PlanBuilder::Repr::kTable) {
    return Status::FailedPrecondition("anomaly_filter expects a table batch");
  }
  std::vector<FilterTableStage::CompiledRule> compiled;
  compiled.reserve(rules_.size());
  for (const Rule& rule : rules_) {
    // Unknown or string columns decline fusion; the interpreted path owns
    // reporting those errors with full pipeline context.
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(rule.column));
    if (plan->SlotDeclaredType(slot) == ValueType::kString) {
      return Status::FailedPrecondition("cannot filter non-numeric column " +
                                        rule.column);
    }
    compiled.push_back(FilterTableStage::CompiledRule{slot, rule});
  }
  plan->AddStage(std::make_unique<FilterTableStage>(this, std::move(compiled)));
  return Status::OK();
}

std::unique_ptr<PipelineComponent> AnomalyFilter::Clone() const {
  auto out = rules_.empty()
                 ? std::make_unique<AnomalyFilter>(rule_name_, keep_)
                 : std::make_unique<AnomalyFilter>(rule_name_, rules_);
  out->dropped_.store(dropped_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return out;
}

}  // namespace cdpipe
