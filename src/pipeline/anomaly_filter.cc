#include "src/pipeline/anomaly_filter.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

AnomalyFilter::AnomalyFilter(std::string rule_name, Predicate keep)
    : rule_name_(std::move(rule_name)), keep_(std::move(keep)) {
  CDPIPE_CHECK(keep_ != nullptr);
}

std::unique_ptr<AnomalyFilter> AnomalyFilter::KeepInRange(
    const std::string& column, double min, double max) {
  auto predicate = [column, min, max](const Schema& schema,
                                      const Row& row) -> Result<bool> {
    CDPIPE_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column));
    const Value& v = row[idx];
    if (v.is_null()) return false;
    CDPIPE_ASSIGN_OR_RETURN(double d, v.AsDouble());
    return d >= min && d <= max;
  };
  return std::make_unique<AnomalyFilter>(
      StrFormat("%s in [%g, %g]", column.c_str(), min, max),
      std::move(predicate));
}

Result<DataBatch> AnomalyFilter::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition("anomaly_filter expects a table batch");
  }
  TableData out;
  out.schema = table->schema;
  out.rows.reserve(table->rows.size());
  size_t dropped = 0;
  for (const Row& row : table->rows) {
    CDPIPE_ASSIGN_OR_RETURN(bool keep, keep_(*table->schema, row));
    if (keep) {
      out.rows.push_back(row);
    } else {
      ++dropped;
    }
  }
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> AnomalyFilter::Clone() const {
  auto out = std::make_unique<AnomalyFilter>(rule_name_, keep_);
  out->dropped_.store(dropped_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return out;
}

}  // namespace cdpipe
