#include "src/pipeline/anomaly_filter.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"

namespace cdpipe {

AnomalyFilter::AnomalyFilter(std::string rule_name, Predicate keep)
    : rule_name_(std::move(rule_name)), keep_(std::move(keep)) {
  CDPIPE_CHECK(keep_ != nullptr);
}

std::unique_ptr<AnomalyFilter> AnomalyFilter::KeepInRange(
    const std::string& column, double min, double max) {
  auto predicate = [column, min, max](const TableData& table,
                                      std::vector<uint8_t>* keep) -> Status {
    CDPIPE_ASSIGN_OR_RETURN(size_t idx, table.schema()->FieldIndex(column));
    CDPIPE_ASSIGN_OR_RETURN(NumericColumnView view,
                            NumericColumnView::Of(table.column(idx), column));
    const size_t rows = view.size();
    if (!view.has_nulls()) {
      for (size_t r = 0; r < rows; ++r) {
        const double d = view[r];
        (*keep)[r] = d >= min && d <= max;
      }
    } else {
      for (size_t r = 0; r < rows; ++r) {
        if (view.IsNull(r)) {
          (*keep)[r] = 0;
          continue;
        }
        const double d = view[r];
        (*keep)[r] = d >= min && d <= max;
      }
    }
    return Status::OK();
  };
  return std::make_unique<AnomalyFilter>(
      StrFormat("%s in [%g, %g]", column.c_str(), min, max),
      std::move(predicate));
}

Result<DataBatch> AnomalyFilter::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition("anomaly_filter expects a table batch");
  }
  std::vector<uint8_t> keep(table->num_rows(), 1);
  CDPIPE_RETURN_NOT_OK(keep_(*table, &keep));
  size_t kept = 0;
  for (uint8_t k : keep) kept += k != 0;
  const size_t dropped = table->num_rows() - kept;
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  if (dropped == 0) {
    return DataBatch(*table);
  }
  return DataBatch(table->Filter(keep));
}

Result<DataBatch> AnomalyFilter::TransformOwned(DataBatch&& batch) const {
  auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition("anomaly_filter expects a table batch");
  }
  std::vector<uint8_t> keep(table->num_rows(), 1);
  CDPIPE_RETURN_NOT_OK(keep_(*table, &keep));
  size_t kept = 0;
  for (uint8_t k : keep) kept += k != 0;
  const size_t dropped = table->num_rows() - kept;
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  if (dropped == 0) {
    return std::move(batch);  // nothing to drop: pass the batch through
  }
  return DataBatch(table->Filter(keep));
}

std::unique_ptr<PipelineComponent> AnomalyFilter::Clone() const {
  auto out = std::make_unique<AnomalyFilter>(rule_name_, keep_);
  out->dropped_.store(dropped_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return out;
}

}  // namespace cdpipe
