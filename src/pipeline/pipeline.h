#ifndef CDPIPE_PIPELINE_PIPELINE_H_
#define CDPIPE_PIPELINE_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/pipeline/component.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

class ExecutionEngine;

namespace obs {
class Histogram;
}  // namespace obs

/// How the pure transform path executes the component chain.
///
///  - `kInterpreted`: the classic loop — every component's batch kernel in
///    sequence, materializing a TableData/FeatureData between stages.
///  - `kFused`: a per-schema compiled block plan (src/pipeline/fusion) that
///    chains column kernels through per-thread scratch without intermediate
///    materialization.  Output is bit-identical to kInterpreted; pipelines
///    containing components that do not implement `Fuse` silently fall back
///    to the interpreted loop.
///
/// The CDPIPE_EXEC_MODE environment variable (read once) overrides every
/// call site: "interpreted" is the kill switch, "fused" additionally routes
/// the serial Transform overload through the fused plan.
enum class ExecMode {
  kInterpreted,
  kFused,
};

/// An ordered sequence of pipeline components ending in a vectorizing stage,
/// i.e. the full preprocessing part of a deployed ML pipeline.  The model is
/// deliberately *not* part of this class — it is attached by the
/// PipelineManager so the platform can swap training strategies without
/// touching preprocessing.
///
/// The pipeline owns its components.  Statistics live inside the components;
/// the two entry points mirror the paper's two data paths:
///
///  - `UpdateAndTransform` — the online path for arriving training chunks:
///    every component first folds the batch into its statistics, then
///    transforms it (online statistics computation, §3.1).
///  - `Transform` — the pure path for prediction queries and for
///    re-materializing evicted feature chunks (§3.2): statistics are only
///    read, never written, so replayed historical data cannot skew them.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  // Manual moves: the statistics version is an atomic (non-movable); the
  // plan cache and scratch pool move by pointer.
  Pipeline(Pipeline&& other) noexcept
      : components_(std::move(other.components_)),
        component_histograms_(std::move(other.component_histograms_)),
        component_names_(std::move(other.component_names_)),
        state_version_(
            other.state_version_.load(std::memory_order_relaxed)),
        plan_cache_(std::move(other.plan_cache_)),
        scratch_pool_(std::move(other.scratch_pool_)) {}
  Pipeline& operator=(Pipeline&& other) noexcept {
    components_ = std::move(other.components_);
    component_histograms_ = std::move(other.component_histograms_);
    component_names_ = std::move(other.component_names_);
    state_version_.store(other.state_version_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    plan_cache_ = std::move(other.plan_cache_);
    scratch_pool_ = std::move(other.scratch_pool_);
    return *this;
  }

  /// Appends a component.  Fails with FailedPrecondition if the component is
  /// stateful but does not support online statistics computation (§3.1: the
  /// platform does not support such components).
  Status AddComponent(std::unique_ptr<PipelineComponent> component);

  size_t num_components() const { return components_.size(); }
  const PipelineComponent& component(size_t i) const { return *components_[i]; }

  /// Wraps a raw chunk into the pipeline's entry representation: a table
  /// with a single string column named "raw".  The table BORROWS every
  /// record (zero-copy string views), so it is only valid while `chunk` is
  /// alive and unmodified; the parser copies whatever it keeps.
  static TableData WrapRaw(const RawChunk& chunk);
  /// Borrowing from a temporary would dangle immediately.
  static TableData WrapRaw(RawChunk&&) = delete;

  /// Online path: Update then Transform through every component.  Output
  /// must be FeatureData (the pipeline must end in a vectorizing stage).
  /// `rows_scanned`, when non-null, accumulates the number of (row ×
  /// component) scans performed, for cost accounting.  Always interpreted:
  /// statistics mutate mid-chain, so no fused plan can be valid, and this
  /// call advances the statistics version that invalidates cached plans.
  Result<FeatureData> UpdateAndTransform(const RawChunk& chunk,
                                         size_t* rows_scanned = nullptr);

  /// Pure path: Transform only.  Used for prediction queries and dynamic
  /// re-materialization.
  Result<FeatureData> Transform(const RawChunk& chunk,
                                size_t* rows_scanned = nullptr) const;

  /// Pure path, parallelized across row ranges of `chunk` on `engine`.
  /// Statistics are frozen on this path and every component transforms rows
  /// independently, so the chunk is split into shards whose count is a
  /// function of the row count ONLY (mirroring the sharded gradient path in
  /// linear_model.cc) and the per-shard outputs are concatenated in shard
  /// order — the result is bit-identical to the serial overload for any
  /// engine thread count AND either execution mode.  Must not be called
  /// from inside an engine task (the pool does not nest).  Falls back to
  /// the serial overload for small chunks or a single-threaded engine, and
  /// to the interpreted loop when the pipeline cannot be fused.
  Result<FeatureData> Transform(const RawChunk& chunk, ExecutionEngine* engine,
                                size_t* rows_scanned = nullptr,
                                ExecMode mode = ExecMode::kFused) const;

  /// The NoOptimization baseline (§5.4): processes the chunk as if online
  /// statistics computation did not exist — each stateful component's
  /// statistics are recomputed from scratch *for this chunk* on a throwaway
  /// clone (one extra scan per stateful component), then the chunk is
  /// transformed.  The deployed statistics are not touched.
  Result<FeatureData> TransformRecomputingStatistics(
      const RawChunk& chunk, size_t* rows_scanned = nullptr) const;

  /// Deep copy of the pipeline including component statistics (warm start).
  std::unique_ptr<Pipeline> Clone() const;

  /// Resets the statistics of every component.
  void Reset();

  std::string ToString() const;

  /// Checkpointing: persists / restores the statistics of every component.
  /// The loader must have built an identically structured pipeline; the
  /// component names are verified.
  Status SaveState(Serializer* out) const;
  Status LoadState(Deserializer* in);

  /// Statistics version: advanced before anything that may mutate component
  /// state (online updates, reset, checkpoint restore).  Fused plans are
  /// compiled against a version and never reused across a bump, so a plan
  /// can never apply stale statistics.
  uint64_t state_version() const {
    return state_version_.load(std::memory_order_acquire);
  }

  /// Fused-plan cache introspection (tests, reports).  Never null on a
  /// live pipeline.
  const fusion::PlanCache* plan_cache() const { return plan_cache_.get(); }

 private:
  /// One interpreted stage with dispatch pre-resolved: the component, its
  /// latency histogram, and its display name materialized once per
  /// Transform call instead of once per component per shard.
  struct StageRef {
    PipelineComponent* component;
    obs::Histogram* histogram;
    const char* name;
  };

  /// Pre-resolves per-stage dispatch for one (possibly sharded) call.  The
  /// borrowed name pointers stay valid for the duration of the call.
  std::vector<StageRef> TransformStages() const;

  /// Statistics-frozen transform of an already-wrapped batch: drives every
  /// component through TransformOwned.  Shared by the serial and sharded
  /// pure paths.
  Result<FeatureData> RunTransform(const std::vector<StageRef>& stages,
                                   DataBatch batch,
                                   size_t* rows_scanned) const;

  /// The fused plan for the current statistics version, or nullptr when
  /// the pipeline cannot be fused (then callers use the interpreted loop).
  std::shared_ptr<const fusion::FusedPlan> FusedPlanForTransform() const;

  /// Executes a compiled plan over the chunk, serial or engine-sharded with
  /// the same shard function and merge order as the interpreted path.
  Result<FeatureData> TransformFused(const RawChunk& chunk,
                                     ExecutionEngine* engine,
                                     const fusion::FusedPlan& plan,
                                     size_t* rows_scanned) const;

  std::vector<std::unique_ptr<PipelineComponent>> components_;
  /// Parallel to components_: per-component transform-latency histograms
  /// ("pipeline.component.<Name>.transform_seconds") in the global metrics
  /// registry.  Components of the same name share one histogram.
  std::vector<obs::Histogram*> component_histograms_;
  /// Parallel to components_: names materialized once at AddComponent time
  /// so per-call stage resolution never re-allocates them.
  std::vector<std::string> component_names_;
  std::atomic<uint64_t> state_version_{0};
  std::unique_ptr<fusion::PlanCache> plan_cache_ =
      std::make_unique<fusion::PlanCache>();
  std::unique_ptr<fusion::ScratchPool> scratch_pool_ =
      std::make_unique<fusion::ScratchPool>();
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_PIPELINE_H_
