#ifndef CDPIPE_PIPELINE_PIPELINE_H_
#define CDPIPE_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/pipeline/component.h"

namespace cdpipe {

class ExecutionEngine;

namespace obs {
class Histogram;
}  // namespace obs

/// An ordered sequence of pipeline components ending in a vectorizing stage,
/// i.e. the full preprocessing part of a deployed ML pipeline.  The model is
/// deliberately *not* part of this class — it is attached by the
/// PipelineManager so the platform can swap training strategies without
/// touching preprocessing.
///
/// The pipeline owns its components.  Statistics live inside the components;
/// the two entry points mirror the paper's two data paths:
///
///  - `UpdateAndTransform` — the online path for arriving training chunks:
///    every component first folds the batch into its statistics, then
///    transforms it (online statistics computation, §3.1).
///  - `Transform` — the pure path for prediction queries and for
///    re-materializing evicted feature chunks (§3.2): statistics are only
///    read, never written, so replayed historical data cannot skew them.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;
  Pipeline(Pipeline&&) noexcept = default;
  Pipeline& operator=(Pipeline&&) noexcept = default;

  /// Appends a component.  Fails with FailedPrecondition if the component is
  /// stateful but does not support online statistics computation (§3.1: the
  /// platform does not support such components).
  Status AddComponent(std::unique_ptr<PipelineComponent> component);

  size_t num_components() const { return components_.size(); }
  const PipelineComponent& component(size_t i) const { return *components_[i]; }

  /// Wraps a raw chunk into the pipeline's entry representation: a table
  /// with a single string column named "raw".  The table BORROWS every
  /// record (zero-copy string views), so it is only valid while `chunk` is
  /// alive and unmodified; the parser copies whatever it keeps.
  static TableData WrapRaw(const RawChunk& chunk);
  /// Borrowing from a temporary would dangle immediately.
  static TableData WrapRaw(RawChunk&&) = delete;

  /// Online path: Update then Transform through every component.  Output
  /// must be FeatureData (the pipeline must end in a vectorizing stage).
  /// `rows_scanned`, when non-null, accumulates the number of (row ×
  /// component) scans performed, for cost accounting.
  Result<FeatureData> UpdateAndTransform(const RawChunk& chunk,
                                         size_t* rows_scanned = nullptr);

  /// Pure path: Transform only.  Used for prediction queries and dynamic
  /// re-materialization.
  Result<FeatureData> Transform(const RawChunk& chunk,
                                size_t* rows_scanned = nullptr) const;

  /// Pure path, parallelized across row ranges of `chunk` on `engine`.
  /// Statistics are frozen on this path and every component transforms rows
  /// independently, so the chunk is split into shards whose count is a
  /// function of the row count ONLY (mirroring the sharded gradient path in
  /// linear_model.cc) and the per-shard outputs are concatenated in shard
  /// order — the result is bit-identical to the serial overload for any
  /// engine thread count.  Must not be called from inside an engine task
  /// (the pool does not nest).  Falls back to the serial overload for small
  /// chunks or a single-threaded engine.
  Result<FeatureData> Transform(const RawChunk& chunk, ExecutionEngine* engine,
                                size_t* rows_scanned = nullptr) const;

  /// The NoOptimization baseline (§5.4): processes the chunk as if online
  /// statistics computation did not exist — each stateful component's
  /// statistics are recomputed from scratch *for this chunk* on a throwaway
  /// clone (one extra scan per stateful component), then the chunk is
  /// transformed.  The deployed statistics are not touched.
  Result<FeatureData> TransformRecomputingStatistics(
      const RawChunk& chunk, size_t* rows_scanned = nullptr) const;

  /// Deep copy of the pipeline including component statistics (warm start).
  std::unique_ptr<Pipeline> Clone() const;

  /// Resets the statistics of every component.
  void Reset();

  std::string ToString() const;

  /// Checkpointing: persists / restores the statistics of every component.
  /// The loader must have built an identically structured pipeline; the
  /// component names are verified.
  Status SaveState(Serializer* out) const;
  Status LoadState(Deserializer* in);

 private:
  /// Statistics-frozen transform of an already-wrapped batch: drives every
  /// component through TransformOwned.  Shared by the serial and sharded
  /// pure paths.
  Result<FeatureData> RunTransform(DataBatch batch, size_t* rows_scanned) const;

  std::vector<std::unique_ptr<PipelineComponent>> components_;
  /// Parallel to components_: per-component transform-latency histograms
  /// ("pipeline.component.<Name>.transform_seconds") in the global metrics
  /// registry.  Components of the same name share one histogram.
  std::vector<obs::Histogram*> component_histograms_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_PIPELINE_H_
