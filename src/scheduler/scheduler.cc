#include "src/scheduler/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace {

struct SchedulerMetrics {
  obs::Counter* decisions_train;
  obs::Counter* decisions_skip;
  obs::Gauge* next_due_seconds;
  obs::Histogram* delay_seconds;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      SchedulerMetrics m;
      m.decisions_train = registry.GetCounter("scheduler.decisions_train");
      m.decisions_skip = registry.GetCounter("scheduler.decisions_skip");
      m.next_due_seconds = registry.GetGauge("scheduler.next_due_seconds");
      m.delay_seconds = registry.GetHistogram(
          "scheduler.delay_seconds",
          {1e-3, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, 86400.0});
      return m;
    }();
    return metrics;
  }
};

void RecordDecision(bool train) {
  if (train) {
    SchedulerMetrics::Get().decisions_train->Increment();
  } else {
    SchedulerMetrics::Get().decisions_skip->Increment();
  }
}

}  // namespace

StaticScheduler::StaticScheduler(double interval_seconds)
    : interval_seconds_(interval_seconds) {
  CDPIPE_CHECK_GT(interval_seconds_, 0.0);
}

std::string StaticScheduler::name() const {
  return StrFormat("static(%.3fs)", interval_seconds_);
}

bool StaticScheduler::ShouldTrain(double now_seconds) {
  if (!initialized_) {
    next_due_ = now_seconds + interval_seconds_;
    initialized_ = true;
    SchedulerMetrics::Get().next_due_seconds->Set(next_due_);
  }
  const bool train = now_seconds >= next_due_;
  RecordDecision(train);
  return train;
}

void StaticScheduler::OnTrainingCompleted(double start_seconds,
                                          double duration_seconds) {
  (void)duration_seconds;
  next_due_ = start_seconds + interval_seconds_;
  SchedulerMetrics::Get().next_due_seconds->Set(next_due_);
}

DynamicScheduler::DynamicScheduler(Options options) : options_(options) {
  CDPIPE_CHECK_GE(options_.slack, 1.0);
  CDPIPE_CHECK_GT(options_.min_interval_seconds, 0.0);
}

std::string DynamicScheduler::name() const {
  return StrFormat("dynamic(S=%.2f)", options_.slack);
}

bool DynamicScheduler::ShouldTrain(double now_seconds) {
  if (!initialized_) {
    next_due_ = now_seconds + options_.initial_interval_seconds;
    initialized_ = true;
    SchedulerMetrics::Get().next_due_seconds->Set(next_due_);
  }
  const bool train = now_seconds >= next_due_;
  RecordDecision(train);
  return train;
}

double DynamicScheduler::ComputeDelaySeconds(double training_seconds) const {
  if (!query_rate_.initialized() || !latency_.initialized()) {
    return std::max(options_.min_interval_seconds,
                    options_.initial_interval_seconds);
  }
  // Formula (6): T' = S * T * pr * pl.
  const double delay = options_.slack * training_seconds *
                       query_rate_.value() * latency_.value();
  return std::max(options_.min_interval_seconds, delay);
}

void DynamicScheduler::OnTrainingCompleted(double start_seconds,
                                           double duration_seconds) {
  const double delay = ComputeDelaySeconds(duration_seconds);
  next_due_ = start_seconds + duration_seconds + delay;
  SchedulerMetrics::Get().delay_seconds->Observe(delay);
  SchedulerMetrics::Get().next_due_seconds->Set(next_due_);
}

void DynamicScheduler::OnPredictionLoad(double queries_per_second,
                                        double latency_seconds_per_item) {
  if (queries_per_second > 0.0) query_rate_.Observe(queries_per_second);
  if (latency_seconds_per_item > 0.0) latency_.Observe(latency_seconds_per_item);
}

}  // namespace cdpipe
