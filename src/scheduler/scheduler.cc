#include "src/scheduler/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

StaticScheduler::StaticScheduler(double interval_seconds)
    : interval_seconds_(interval_seconds) {
  CDPIPE_CHECK_GT(interval_seconds_, 0.0);
}

std::string StaticScheduler::name() const {
  return StrFormat("static(%.3fs)", interval_seconds_);
}

bool StaticScheduler::ShouldTrain(double now_seconds) {
  if (!initialized_) {
    next_due_ = now_seconds + interval_seconds_;
    initialized_ = true;
  }
  return now_seconds >= next_due_;
}

void StaticScheduler::OnTrainingCompleted(double start_seconds,
                                          double duration_seconds) {
  (void)duration_seconds;
  next_due_ = start_seconds + interval_seconds_;
}

DynamicScheduler::DynamicScheduler(Options options) : options_(options) {
  CDPIPE_CHECK_GE(options_.slack, 1.0);
  CDPIPE_CHECK_GT(options_.min_interval_seconds, 0.0);
}

std::string DynamicScheduler::name() const {
  return StrFormat("dynamic(S=%.2f)", options_.slack);
}

bool DynamicScheduler::ShouldTrain(double now_seconds) {
  if (!initialized_) {
    next_due_ = now_seconds + options_.initial_interval_seconds;
    initialized_ = true;
  }
  return now_seconds >= next_due_;
}

double DynamicScheduler::ComputeDelaySeconds(double training_seconds) const {
  if (!query_rate_.initialized() || !latency_.initialized()) {
    return std::max(options_.min_interval_seconds,
                    options_.initial_interval_seconds);
  }
  // Formula (6): T' = S * T * pr * pl.
  const double delay = options_.slack * training_seconds *
                       query_rate_.value() * latency_.value();
  return std::max(options_.min_interval_seconds, delay);
}

void DynamicScheduler::OnTrainingCompleted(double start_seconds,
                                           double duration_seconds) {
  next_due_ =
      start_seconds + duration_seconds + ComputeDelaySeconds(duration_seconds);
}

void DynamicScheduler::OnPredictionLoad(double queries_per_second,
                                        double latency_seconds_per_item) {
  if (queries_per_second > 0.0) query_rate_.Observe(queries_per_second);
  if (latency_seconds_per_item > 0.0) latency_.Observe(latency_seconds_per_item);
}

}  // namespace cdpipe
