#ifndef CDPIPE_SCHEDULER_SCHEDULER_H_
#define CDPIPE_SCHEDULER_SCHEDULER_H_

#include <memory>
#include <string>

#include "src/common/status.h"

namespace cdpipe {

/// Exponentially-weighted moving average used for the rate/latency signals
/// the dynamic scheduler consumes.
class EwmaTracker {
 public:
  explicit EwmaTracker(double alpha = 0.2) : alpha_(alpha) {}

  void Observe(double value) {
    if (!initialized_) {
      value_ = value;
      initialized_ = true;
    } else {
      value_ = alpha_ * value + (1.0 - alpha_) * value_;
    }
    ++count_;
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  int64_t count() const { return count_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  int64_t count_ = 0;
};

/// Decides when the pipeline manager should run the next proactive training
/// (paper §4.1).  The scheduler is pure decision logic over a caller-supplied
/// clock: the deployment driver reports time, query rate, latency, and
/// training durations; the scheduler answers "is a proactive step due now?".
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// True when a proactive training should run at time `now_seconds`.
  virtual bool ShouldTrain(double now_seconds) = 0;

  /// Reports that a proactive training started at `start_seconds` and took
  /// `duration_seconds` of training time.
  virtual void OnTrainingCompleted(double start_seconds,
                                   double duration_seconds) = 0;

  /// Reports observed prediction load (queries per second and seconds per
  /// query).  The static scheduler ignores this.
  virtual void OnPredictionLoad(double queries_per_second,
                                double latency_seconds_per_item) {
    (void)queries_per_second;
    (void)latency_seconds_per_item;
  }
};

/// Fixed-interval scheduling: train every `interval_seconds`, starting one
/// interval after construction.
class StaticScheduler final : public Scheduler {
 public:
  explicit StaticScheduler(double interval_seconds);

  std::string name() const override;
  bool ShouldTrain(double now_seconds) override;
  void OnTrainingCompleted(double start_seconds,
                           double duration_seconds) override;

  double interval_seconds() const { return interval_seconds_; }

 private:
  double interval_seconds_;
  double next_due_ = 0.0;
  bool initialized_ = false;
};

/// Dynamic scheduling, formula (6) of the paper:
///
///   T' = S * T * pr * pl
///
/// where T is the duration of the last proactive training, pr the average
/// prediction-query rate, pl the average per-query latency, and S >= 1 the
/// user slack.  The delay until the next training covers the time needed to
/// answer the queries that queued up during training (T * pr * pl), scaled
/// by the slack; S in [1, 2) favors training freshness, S >= 2 favors query
/// serving.
class DynamicScheduler final : public Scheduler {
 public:
  struct Options {
    double slack = 1.5;
    /// Lower bound on the delay so a zero-latency measurement cannot spin
    /// the trainer in a loop.
    double min_interval_seconds = 1e-3;
    /// Used until the first training/load measurements exist.
    double initial_interval_seconds = 1.0;
  };

  explicit DynamicScheduler(Options options);

  std::string name() const override;
  bool ShouldTrain(double now_seconds) override;
  void OnTrainingCompleted(double start_seconds,
                           double duration_seconds) override;
  void OnPredictionLoad(double queries_per_second,
                        double latency_seconds_per_item) override;

  /// The delay the scheduler would choose for a training that took
  /// `training_seconds` under the current load estimates (exposed for tests
  /// and the ablation bench).
  double ComputeDelaySeconds(double training_seconds) const;

 private:
  Options options_;
  EwmaTracker query_rate_;
  EwmaTracker latency_;
  double next_due_ = 0.0;
  bool initialized_ = false;
};

}  // namespace cdpipe

#endif  // CDPIPE_SCHEDULER_SCHEDULER_H_
