#ifndef CDPIPE_SAMPLING_SAMPLER_H_
#define CDPIPE_SAMPLING_SAMPLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {

/// Sampling strategies offered by the data manager (paper §4.2).
enum class SamplerKind {
  kUniform,  ///< every live chunk equally likely
  kWindow,   ///< uniform over the most recent w chunks
  kTime,     ///< recency-weighted (weight ∝ arrival rank)
};

const char* SamplerKindName(SamplerKind kind);

/// Selects `sample_size` chunk ids without replacement from the live chunk
/// ids (oldest first, as returned by ChunkStore::LiveIds).  Returns fewer
/// ids when fewer chunks exist.  Implementations are deterministic given
/// the Rng.
class Sampler {
 public:
  virtual ~Sampler() = default;

  virtual SamplerKind kind() const = 0;
  virtual std::string name() const = 0;

  virtual std::vector<ChunkId> Sample(const std::vector<ChunkId>& live_ids,
                                      size_t sample_size, Rng* rng) const = 0;

  virtual std::unique_ptr<Sampler> Clone() const = 0;
};

/// Uniform sampling without replacement over all live chunks.
class UniformSampler final : public Sampler {
 public:
  SamplerKind kind() const override { return SamplerKind::kUniform; }
  std::string name() const override { return "uniform"; }
  std::vector<ChunkId> Sample(const std::vector<ChunkId>& live_ids,
                              size_t sample_size, Rng* rng) const override;
  std::unique_ptr<Sampler> Clone() const override {
    return std::make_unique<UniformSampler>(*this);
  }
};

/// Uniform sampling restricted to the `window_size` most recent chunks.
class WindowSampler final : public Sampler {
 public:
  explicit WindowSampler(size_t window_size);

  SamplerKind kind() const override { return SamplerKind::kWindow; }
  std::string name() const override;
  std::vector<ChunkId> Sample(const std::vector<ChunkId>& live_ids,
                              size_t sample_size, Rng* rng) const override;
  std::unique_ptr<Sampler> Clone() const override {
    return std::make_unique<WindowSampler>(*this);
  }

  size_t window_size() const { return window_size_; }

 private:
  size_t window_size_;
};

/// Recency-weighted sampling without replacement: the i-th oldest of n live
/// chunks has weight i (linear in arrival rank), so recent chunks are up to
/// n times likelier than the oldest.  Uses the Efraimidis–Spirakis weighted
/// reservoir scheme (keys u^(1/w), take the s largest).
class TimeBasedSampler final : public Sampler {
 public:
  SamplerKind kind() const override { return SamplerKind::kTime; }
  std::string name() const override { return "time-based"; }
  std::vector<ChunkId> Sample(const std::vector<ChunkId>& live_ids,
                              size_t sample_size, Rng* rng) const override;
  std::unique_ptr<Sampler> Clone() const override {
    return std::make_unique<TimeBasedSampler>(*this);
  }
};

/// Factory from kind; `window_size` only used by the window sampler.
std::unique_ptr<Sampler> MakeSampler(SamplerKind kind, size_t window_size = 0);

}  // namespace cdpipe

#endif  // CDPIPE_SAMPLING_SAMPLER_H_
