#ifndef CDPIPE_SAMPLING_MU_THEORY_H_
#define CDPIPE_SAMPLING_MU_THEORY_H_

#include <cstddef>

namespace cdpipe {

/// Closed-form estimates of the average materialization utilization rate μ
/// from §3.2.2 of the paper.  μ is the expected fraction of sampled chunks
/// that are already materialized (no re-materialization needed), averaged
/// over a deployment in which one sampling operation follows every incoming
/// chunk, for n = 1..N chunks, with the m *most recent* chunks materialized
/// (oldest-first eviction).

/// t-th harmonic number, exactly for small t and via the asymptotic
/// expansion ln(t) + γ + 1/(2t) - 1/(12t²) for large t.
double HarmonicNumber(size_t t);

/// Formula (4): uniform sampling.
///   μ = m (1 + H_N - H_m) / N  ≈  m (1 + ln N - ln m) / N
double MuUniform(size_t total_chunks, size_t materialized_chunks);

/// Formula (5): window-based sampling with window w.  μ = 1 when m >= w.
double MuWindow(size_t total_chunks, size_t materialized_chunks,
                size_t window);

/// Time-based sampling with linear rank weights (weight of the i-th oldest
/// of n chunks is i).  The paper gives no closed form; this evaluates the
/// exact expectation
///   μ_n = min(1, Σ_{i=n-m+1..n} i / Σ_{i=1..n} i)   (single-draw inclusion
/// probability mass of the materialized suffix), averaged over n = 1..N —
/// a first-order approximation that matches the paper's empirical values
/// (0.68 at m/n = 0.2, 0.97 at m/n = 0.6 for N = 12000).
double MuTimeLinear(size_t total_chunks, size_t materialized_chunks);

/// Exact per-n utilization for uniform sampling, μ_n = min(1, m/n); exposed
/// for property tests.
double MuUniformAtN(size_t n, size_t materialized_chunks);

}  // namespace cdpipe

#endif  // CDPIPE_SAMPLING_MU_THEORY_H_
