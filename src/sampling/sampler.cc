#include "src/sampling/sampler.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kUniform:
      return "uniform";
    case SamplerKind::kWindow:
      return "window-based";
    case SamplerKind::kTime:
      return "time-based";
  }
  return "?";
}

std::vector<ChunkId> UniformSampler::Sample(
    const std::vector<ChunkId>& live_ids, size_t sample_size,
    Rng* rng) const {
  const std::vector<size_t> picks =
      rng->SampleWithoutReplacement(live_ids.size(), sample_size);
  std::vector<ChunkId> out;
  out.reserve(picks.size());
  for (size_t i : picks) out.push_back(live_ids[i]);
  return out;
}

WindowSampler::WindowSampler(size_t window_size) : window_size_(window_size) {
  CDPIPE_CHECK_GT(window_size_, 0u);
}

std::string WindowSampler::name() const {
  return StrFormat("window-based(w=%zu)", window_size_);
}

std::vector<ChunkId> WindowSampler::Sample(
    const std::vector<ChunkId>& live_ids, size_t sample_size,
    Rng* rng) const {
  const size_t n = live_ids.size();
  const size_t w = std::min(window_size_, n);
  const size_t offset = n - w;
  const std::vector<size_t> picks =
      rng->SampleWithoutReplacement(w, sample_size);
  std::vector<ChunkId> out;
  out.reserve(picks.size());
  for (size_t i : picks) out.push_back(live_ids[offset + i]);
  return out;
}

std::vector<ChunkId> TimeBasedSampler::Sample(
    const std::vector<ChunkId>& live_ids, size_t sample_size,
    Rng* rng) const {
  const size_t n = live_ids.size();
  if (sample_size >= n) return live_ids;
  // Efraimidis–Spirakis: key_i = u_i^(1/w_i); take the sample_size largest.
  // Using log-keys avoids underflow: log(key) = log(u)/w.
  std::vector<std::pair<double, size_t>> keyed(n);
  for (size_t i = 0; i < n; ++i) {
    const double weight = static_cast<double>(i + 1);  // rank weight
    double u = 0.0;
    do {
      u = rng->NextDouble();
    } while (u <= 1e-300);
    keyed[i] = {std::log(u) / weight, i};
  }
  std::partial_sort(keyed.begin(), keyed.begin() + sample_size, keyed.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<ChunkId> out;
  out.reserve(sample_size);
  for (size_t k = 0; k < sample_size; ++k) {
    out.push_back(live_ids[keyed[k].second]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Sampler> MakeSampler(SamplerKind kind, size_t window_size) {
  switch (kind) {
    case SamplerKind::kUniform:
      return std::make_unique<UniformSampler>();
    case SamplerKind::kWindow:
      return std::make_unique<WindowSampler>(window_size);
    case SamplerKind::kTime:
      return std::make_unique<TimeBasedSampler>();
  }
  CDPIPE_CHECK(false) << "unknown sampler kind";
  return nullptr;
}

}  // namespace cdpipe
