#include "src/sampling/mu_theory.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cdpipe {
namespace {
constexpr double kEulerMascheroni = 0.57721566490153286;
}  // namespace

double HarmonicNumber(size_t t) {
  if (t == 0) return 0.0;
  if (t <= 64) {
    double h = 0.0;
    for (size_t i = 1; i <= t; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double td = static_cast<double>(t);
  return std::log(td) + kEulerMascheroni + 1.0 / (2.0 * td) -
         1.0 / (12.0 * td * td);
}

double MuUniformAtN(size_t n, size_t materialized_chunks) {
  if (n == 0) return 1.0;
  if (n <= materialized_chunks) return 1.0;
  return static_cast<double>(materialized_chunks) / static_cast<double>(n);
}

double MuUniform(size_t total_chunks, size_t materialized_chunks) {
  CDPIPE_CHECK_GT(total_chunks, 0u);
  const size_t m = std::min(materialized_chunks, total_chunks);
  if (m == 0) return 0.0;
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(total_chunks);
  return md * (1.0 + HarmonicNumber(total_chunks) - HarmonicNumber(m)) / nd;
}

double MuWindow(size_t total_chunks, size_t materialized_chunks,
                size_t window) {
  CDPIPE_CHECK_GT(total_chunks, 0u);
  CDPIPE_CHECK_GT(window, 0u);
  const size_t m = std::min(materialized_chunks, total_chunks);
  if (m == 0) return 0.0;
  if (m >= window) return 1.0;
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(total_chunks);
  const double wd = static_cast<double>(std::min(window, total_chunks));
  // μ = [m + m (H_w - H_m) + (N - w) m / w] / N, the last term only when
  // the deployment actually reaches n > w chunks.
  double acc = md + md * (HarmonicNumber(static_cast<size_t>(wd)) -
                          HarmonicNumber(m));
  if (nd > wd) acc += (nd - wd) * md / wd;
  return acc / nd;
}

double MuTimeLinear(size_t total_chunks, size_t materialized_chunks) {
  CDPIPE_CHECK_GT(total_chunks, 0u);
  const size_t m = std::min(materialized_chunks, total_chunks);
  if (m == 0) return 0.0;
  double acc = 0.0;
  for (size_t n = 1; n <= total_chunks; ++n) {
    if (n <= m) {
      acc += 1.0;
      continue;
    }
    // Total weight of the n live chunks is n(n+1)/2; the materialized
    // suffix (the m newest) carries Σ_{i=n-m+1..n} i = m(2n-m+1)/2.
    const double nd = static_cast<double>(n);
    const double md = static_cast<double>(m);
    acc += md * (2.0 * nd - md + 1.0) / (nd * (nd + 1.0));
  }
  return acc / static_cast<double>(total_chunks);
}

}  // namespace cdpipe
