#ifndef CDPIPE_CORE_DEPLOYMENT_H_
#define CDPIPE_CORE_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/admission.h"
#include "src/core/cost_model.h"
#include "src/core/data_manager.h"
#include "src/core/pipeline_manager.h"
#include "src/core/report.h"
#include "src/engine/execution_engine.h"
#include "src/ml/metrics.h"
#include "src/ml/prequential.h"
#include "src/ml/trainer.h"
#include "src/sampling/sampler.h"
#include "src/serving/prediction_service.h"
#include "src/serving/snapshot_publisher.h"

namespace cdpipe {

/// Base driver for the three deployment approaches compared in §5.2.
///
/// The shared replay protocol per incoming chunk (the paper's "deployment
/// process", §5.1):
///   1. the data manager discretizes/stores the raw chunk,
///   2. the pipeline manager runs the online path: statistics update +
///      transform, prequential test-then-train evaluation, and (for every
///      strategy) an online SGD update,
///   3. the transformed feature chunk is stored (materialized),
///   4. the strategy hook runs (nothing / proactive training / periodic
///      full retraining),
///   5. quality and cost are snapshotted into the report curve.
class Deployment {
 public:
  struct Options {
    /// Storage bounds (N and m of §3.2.2).
    ChunkStore::Options store;
    /// Sampling strategy for proactive training.
    SamplerKind sampler = SamplerKind::kUniform;
    size_t sampler_window = 0;  ///< window sampler only
    /// Online statistics computation + feature reuse (§3.1, §5.4 toggle).
    bool online_statistics = true;
    /// Online SGD on each arriving chunk (all three strategies do this).
    bool online_learning = true;
    /// Sliding-window size (observations) for the windowed quality curve.
    size_t eval_window = 20000;
    uint64_t seed = 42;
    /// Worker threads for re-materialization fan-out (1 = deterministic).
    size_t engine_threads = 1;
    /// Retry policy for transient failures (flaky engine tasks, storage
    /// hiccups, failed re-materializations).  Applied by the execution
    /// engine to parallel tasks and by the deployment loop to ingest.
    RetryPolicy retry;
    /// Graceful degradation: keep the run alive when a transient failure
    /// survives its retries — an unstorable feature chunk stays
    /// unmaterialized, an unrecoverable sampled chunk is skipped — with a
    /// recorded warning and a `deployment.degraded` metric.  Logic errors
    /// (duplicate ids, schema mismatches) still abort.  Disabled, every
    /// failure propagates, matching the pre-robustness behavior.
    bool degrade_on_failure = true;
    /// Staleness bound K for overload publish gating: while the ingest
    /// admission controller reports kOverloaded, per-chunk snapshot
    /// republishes are skipped — serving keeps answering from the last
    /// epoch — but never for more than K-1 consecutive chunks, so the
    /// served snapshot is at most K chunks old.  0 disables the gate
    /// (publish every chunk regardless of load).  Inert without a serving
    /// attachment or without RunShaped.
    size_t publish_staleness_bound_chunks = 4;
  };

  Deployment(std::string strategy_name, Options options,
             std::unique_ptr<Pipeline> pipeline,
             std::unique_ptr<LinearModel> model,
             std::unique_ptr<Optimizer> optimizer,
             std::unique_ptr<Metric> metric);
  virtual ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Trains the initial model over `bootstrap` chunks (pipeline statistics
  /// are folded in; chunks are ingested into the store as historical data).
  /// Mirrors the paper's initial training on day 0 / Jan-2015.  Not counted
  /// in the deployment cost.
  Status InitialTrain(const std::vector<RawChunk>& bootstrap,
                      const BatchTrainer::Options& train_options);

  /// Replays the deployment stream and produces the report.  Cost counters
  /// and μ accounting start from zero at the beginning of the replay.
  Result<DeploymentReport> Run(const std::vector<RawChunk>& stream);

  /// Replays the stream through a bounded admission queue: chunks arrive on
  /// the stream's event clock (`event_time_seconds`, as written by the
  /// traffic shaper), the consumer drains one chunk per
  /// `admission->options().service_seconds_per_chunk` of that clock, and
  /// `admission`'s policy decides what happens when the queue fills (shed
  /// oldest/newest, block with timeout, degrade).  While the controller
  /// reports pressure, proactive training defers and — with a serving
  /// attachment — per-chunk republishes are gated by
  /// `publish_staleness_bound_chunks`.  When the queue never fills the
  /// replay is bit-identical to `Run` on the same stream.  `admission` is
  /// borrowed for the duration of the call.
  Result<DeploymentReport> RunShaped(const std::vector<RawChunk>& stream,
                                     AdmissionController* admission);

  /// Attaches the serving tier (both pointers borrowed; nullptr detaches).
  /// Once attached, the deployment publishes a fresh snapshot epoch at the
  /// end of InitialTrain, at the start of Run, after each chunk's online
  /// path (and mid-chunk — after the statistics update, before the online
  /// SGD — when `serve_evaluation` is set), and after checkpoint restores
  /// / redeployments; strategies publish after their own training steps.
  ///
  /// With `serve_evaluation` true and a non-null `service`, the prequential
  /// evaluate step of every chunk routes through the prediction service
  /// against the just-published snapshot (serve-then-train).  Because the
  /// snapshot is published after the chunk's statistics update and before
  /// its online SGD update, the served scores are bit-identical to the
  /// in-loop evaluate path.  A failed serving request (injected fault,
  /// stopped service) falls back to the in-loop path — accounted in
  /// `serving.eval_fallbacks` and `DeploymentReport::degraded_events` —
  /// so the quality curve never loses observations.
  void AttachServing(serving::SnapshotPublisher* publisher,
                     serving::PredictionService* service,
                     bool serve_evaluation);

  /// Publishes the current deployed state (0 if no publisher attached).
  uint64_t PublishSnapshot() { return pipeline_manager_->PublishSnapshot(); }

  const std::string& strategy_name() const { return strategy_name_; }
  const PipelineManager& pipeline_manager() const { return *pipeline_manager_; }
  const DataManager& data_manager() const { return data_manager_; }
  const CostModel& cost() const { return cost_; }

  /// Per-chunk outcome handed to the strategy hook: how many prediction
  /// queries the chunk contributed and their mean error signal (error
  /// fraction for classification, mean squared error for regression) —
  /// the input of drift detectors.
  struct ChunkOutcome {
    int64_t rows = 0;
    double mean_error_signal = 0.0;
    /// Wall-clock seconds spent answering this chunk's prediction queries.
    double prediction_seconds = 0.0;
    /// Event-time seconds since the previous chunk (the arrival period).
    double event_period_seconds = 0.0;
  };

 protected:
  /// Strategy hook, invoked after the online path of each chunk.
  /// `stream_index` counts chunks within the current Run (0-based).
  virtual Status AfterChunk(size_t stream_index, const RawChunk& chunk,
                            const ChunkOutcome& outcome) = 0;

  /// Lets strategies contribute their counters to the final report.
  virtual void FillReport(DeploymentReport* report) const { (void)report; }

  PipelineManager& pipeline_manager() { return *pipeline_manager_; }
  DataManager& data_manager() { return data_manager_; }
  ExecutionEngine& engine() { return engine_; }
  CostModel& cost() { return cost_; }
  Rng& rng() { return rng_; }
  const Options& options() const { return options_; }

  /// Ingest load state seen by strategy hooks: the active admission
  /// controller's state during RunShaped, kNormal otherwise.  Strategies use
  /// it to defer optional work (proactive iterations, drift bursts) while
  /// the ingest queue is backed up.
  LoadState load_state() const {
    return active_admission_ != nullptr ? active_admission_->state()
                                        : LoadState::kNormal;
  }

 public:
  /// Process-unique id assigned at construction (from 1), used as the
  /// `deployment` half of every correlation id this instance emits.
  uint32_t deployment_id() const { return deployment_id_; }

 private:
  /// Mutable per-replay bookkeeping threaded through ProcessStreamChunk.
  struct RunState;

  /// The per-chunk online path: OnlineStep when no serving tier is
  /// attached, otherwise the phased serve-then-train flow (preprocess →
  /// publish → evaluate via the service → online SGD).  `gate_publish`
  /// suppresses the mid-chunk snapshot publish (overload gating) — the
  /// serve-eval path then answers from the last published epoch.
  Result<FeatureChunk> RunOnlinePath(const RawChunk& chunk,
                                     PrequentialEvaluator* evaluator,
                                     bool gate_publish);

  /// One chunk of the shared replay protocol: ingest-with-retry, online
  /// path, feature materialization (skipped for degraded admits), strategy
  /// hook, publish cadence, report row.  Identical call sequence whether
  /// invoked from the plain or the shaped replay loop.
  Status ProcessStreamChunk(RunState* state, const RawChunk& chunk,
                            bool degraded_admit);

  /// Shared replay driver: plain in-order when `admission` is null,
  /// otherwise the virtual-time admission simulation.
  Result<DeploymentReport> RunImpl(const std::vector<RawChunk>& stream,
                                   AdmissionController* admission);

  std::string strategy_name_;
  uint32_t deployment_id_;
  Options options_;
  CostModel cost_;
  DataManager data_manager_;
  ExecutionEngine engine_;
  std::unique_ptr<PipelineManager> pipeline_manager_;
  std::unique_ptr<Metric> metric_prototype_;
  Rng rng_;
  int64_t initial_training_epochs_ = 0;

  // Serving attachment (all borrowed; see AttachServing).
  serving::SnapshotPublisher* serving_publisher_ = nullptr;
  serving::PredictionService* serving_service_ = nullptr;
  bool serve_evaluation_ = false;
  /// Reader for the serve-eval path; owned here, used only by the Run
  /// thread (SnapshotReader is single-threaded by contract).
  std::unique_ptr<serving::SnapshotReader> serve_reader_;
  /// Borrowed for the duration of RunShaped; null in a plain Run.
  AdmissionController* active_admission_ = nullptr;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_DEPLOYMENT_H_
