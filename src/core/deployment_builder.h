#ifndef CDPIPE_CORE_DEPLOYMENT_BUILDER_H_
#define CDPIPE_CORE_DEPLOYMENT_BUILDER_H_

#include <memory>
#include <string>
#include <utility>

#include "src/core/continuous_deployment.h"
#include "src/core/online_deployment.h"
#include "src/core/periodical_deployment.h"
#include "src/drift/drift_detector.h"
#include "src/ml/metrics.h"
#include "src/scheduler/scheduler.h"

namespace cdpipe {

/// Fluent assembly of a deployment: collects the pipeline, model, optimizer,
/// metric, storage bounds, and strategy knobs, then builds one of the three
/// strategies.  Exists so applications do not have to juggle three option
/// structs; every setter has the library default documented at the option
/// it forwards to.
///
///   auto deployment = DeploymentBuilder()
///       .Pipeline(MakeUrlPipeline(cfg))
///       .Model(std::make_unique<LinearModel>(MakeUrlModelOptions(cfg)))
///       .Optimizer(MakeOptimizer({.kind = OptimizerKind::kAdam}))
///       .Metric(std::make_unique<MisclassificationRate>())
///       .Sampler(SamplerKind::kTime)
///       .MaterializedChunkBudget(500)
///       .ProactiveEveryChunks(5)
///       .ProactiveSampleChunks(20)
///       .BuildContinuous();
///
/// Build methods return FailedPrecondition when a required ingredient
/// (pipeline, model, optimizer, metric) is missing.  The builder is
/// single-shot: ingredients are consumed by the first successful build.
class DeploymentBuilder {
 public:
  DeploymentBuilder() = default;

  DeploymentBuilder& Pipeline(std::unique_ptr<class Pipeline> pipeline) {
    pipeline_ = std::move(pipeline);
    return *this;
  }
  DeploymentBuilder& Model(std::unique_ptr<LinearModel> model) {
    model_ = std::move(model);
    return *this;
  }
  DeploymentBuilder& Optimizer(std::unique_ptr<class Optimizer> optimizer) {
    optimizer_ = std::move(optimizer);
    return *this;
  }
  DeploymentBuilder& Metric(std::unique_ptr<class Metric> metric) {
    metric_ = std::move(metric);
    return *this;
  }

  DeploymentBuilder& Seed(uint64_t seed) {
    options_.seed = seed;
    return *this;
  }
  DeploymentBuilder& Sampler(SamplerKind kind, size_t window = 0) {
    options_.sampler = kind;
    options_.sampler_window = window;
    return *this;
  }
  /// m of §3.2.2 — the feature-cache capacity.
  DeploymentBuilder& MaterializedChunkBudget(size_t chunks) {
    options_.store.max_materialized_chunks = chunks;
    return *this;
  }
  /// N of §3.2.2 — bound on the raw chunk log (0 = unbounded).
  DeploymentBuilder& RawChunkBudget(size_t chunks) {
    options_.store.max_raw_chunks = chunks;
    return *this;
  }
  DeploymentBuilder& OnlineStatistics(bool enabled) {
    options_.online_statistics = enabled;
    return *this;
  }
  DeploymentBuilder& OnlineLearning(bool enabled) {
    options_.online_learning = enabled;
    return *this;
  }
  DeploymentBuilder& EvalWindow(size_t observations) {
    options_.eval_window = observations;
    return *this;
  }
  DeploymentBuilder& EngineThreads(size_t threads) {
    options_.engine_threads = threads;
    return *this;
  }

  // Continuous-strategy knobs.
  DeploymentBuilder& ProactiveEveryChunks(size_t chunks) {
    continuous_.proactive_every_chunks = chunks;
    return *this;
  }
  DeploymentBuilder& ProactiveSampleChunks(size_t chunks) {
    continuous_.sample_chunks = chunks;
    return *this;
  }
  DeploymentBuilder& Scheduler(std::unique_ptr<class Scheduler> scheduler) {
    continuous_.scheduler = std::move(scheduler);
    return *this;
  }
  DeploymentBuilder& DriftDetector(
      std::unique_ptr<class DriftDetector> detector,
      size_t burst_iterations = 3, size_t window_chunks = 20) {
    continuous_.drift_detector = std::move(detector);
    continuous_.drift_burst_iterations = burst_iterations;
    continuous_.drift_window_chunks = window_chunks;
    return *this;
  }

  // Periodical-strategy knobs.
  DeploymentBuilder& RetrainEveryChunks(size_t chunks) {
    periodical_.retrain_every_chunks = chunks;
    return *this;
  }
  DeploymentBuilder& WarmStart(bool enabled) {
    periodical_.warm_start = enabled;
    return *this;
  }
  DeploymentBuilder& RetrainOptions(BatchTrainer::Options options) {
    periodical_.retrain = options;
    return *this;
  }
  /// Velox-style error-threshold retraining (0 disables).
  DeploymentBuilder& RetrainErrorThreshold(double threshold) {
    periodical_.retrain_error_threshold = threshold;
    return *this;
  }

  Result<std::unique_ptr<OnlineDeployment>> BuildOnline();
  Result<std::unique_ptr<PeriodicalDeployment>> BuildPeriodical();
  Result<std::unique_ptr<ContinuousDeployment>> BuildContinuous();

 private:
  Status CheckIngredients() const;

  std::unique_ptr<class Pipeline> pipeline_;
  std::unique_ptr<LinearModel> model_;
  std::unique_ptr<class Optimizer> optimizer_;
  std::unique_ptr<class Metric> metric_;
  Deployment::Options options_;
  ContinuousDeployment::ContinuousOptions continuous_;
  PeriodicalDeployment::PeriodicalOptions periodical_;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_DEPLOYMENT_BUILDER_H_
