#include "src/core/cost_model.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

const char* CostPhaseName(CostPhase phase) {
  switch (phase) {
    case CostPhase::kPreprocessing:
      return "preprocessing";
    case CostPhase::kOnlineTraining:
      return "online-training";
    case CostPhase::kProactiveTraining:
      return "proactive-training";
    case CostPhase::kRetraining:
      return "retraining";
    case CostPhase::kMaterialization:
      return "materialization";
    case CostPhase::kPrediction:
      return "prediction";
    case CostPhase::kSpill:
      return "spill";
    case CostPhase::kDiskLoad:
      return "disk-load";
    case CostPhase::kNumPhases:
      break;
  }
  return "?";
}

CostModel::CostModel(const CostModel& other) { *this = other; }

CostModel& CostModel::operator=(const CostModel& other) {
  for (size_t i = 0; i < kNumPhases; ++i) {
    seconds_[i].store(other.seconds_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    work_[i].store(other.work_[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  return *this;
}

void CostModel::AddSeconds(CostPhase phase, double seconds) {
  seconds_[static_cast<size_t>(phase)].fetch_add(seconds,
                                                 std::memory_order_relaxed);
}

void CostModel::AddWork(CostPhase phase, int64_t rows) {
  work_[static_cast<size_t>(phase)].fetch_add(rows,
                                              std::memory_order_relaxed);
}

double CostModel::SecondsIn(CostPhase phase) const {
  return seconds_[static_cast<size_t>(phase)].load(std::memory_order_relaxed);
}

int64_t CostModel::WorkIn(CostPhase phase) const {
  return work_[static_cast<size_t>(phase)].load(std::memory_order_relaxed);
}

double CostModel::TotalSeconds() const {
  double total = 0.0;
  for (const std::atomic<double>& s : seconds_) {
    total += s.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t CostModel::TotalWork() const {
  int64_t total = 0;
  for (const std::atomic<int64_t>& w : work_) {
    total += w.load(std::memory_order_relaxed);
  }
  return total;
}

double CostModel::TrainingSeconds() const {
  return SecondsIn(CostPhase::kOnlineTraining) +
         SecondsIn(CostPhase::kProactiveTraining) +
         SecondsIn(CostPhase::kRetraining);
}

void CostModel::Reset() {
  for (size_t i = 0; i < kNumPhases; ++i) {
    seconds_[i].store(0.0, std::memory_order_relaxed);
    work_[i].store(0, std::memory_order_relaxed);
  }
}

std::string CostModel::ToString() const {
  std::string out = "Cost{";
  bool first = true;
  for (size_t i = 0; i < kNumPhases; ++i) {
    const double seconds = seconds_[i].load(std::memory_order_relaxed);
    const int64_t work = work_[i].load(std::memory_order_relaxed);
    if (seconds == 0.0 && work == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += StrFormat("%s: %.3fs/%lld rows",
                     CostPhaseName(static_cast<CostPhase>(i)), seconds,
                     static_cast<long long>(work));
  }
  out += StrFormat("; total %.3fs}", TotalSeconds());
  return out;
}

}  // namespace cdpipe
