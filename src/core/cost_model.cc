#include "src/core/cost_model.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

const char* CostPhaseName(CostPhase phase) {
  switch (phase) {
    case CostPhase::kPreprocessing:
      return "preprocessing";
    case CostPhase::kOnlineTraining:
      return "online-training";
    case CostPhase::kProactiveTraining:
      return "proactive-training";
    case CostPhase::kRetraining:
      return "retraining";
    case CostPhase::kMaterialization:
      return "materialization";
    case CostPhase::kPrediction:
      return "prediction";
    case CostPhase::kNumPhases:
      break;
  }
  return "?";
}

void CostModel::AddSeconds(CostPhase phase, double seconds) {
  seconds_[static_cast<size_t>(phase)] += seconds;
}

void CostModel::AddWork(CostPhase phase, int64_t rows) {
  work_[static_cast<size_t>(phase)] += rows;
}

double CostModel::SecondsIn(CostPhase phase) const {
  return seconds_[static_cast<size_t>(phase)];
}

int64_t CostModel::WorkIn(CostPhase phase) const {
  return work_[static_cast<size_t>(phase)];
}

double CostModel::TotalSeconds() const {
  double total = 0.0;
  for (double s : seconds_) total += s;
  return total;
}

int64_t CostModel::TotalWork() const {
  int64_t total = 0;
  for (int64_t w : work_) total += w;
  return total;
}

double CostModel::TrainingSeconds() const {
  return SecondsIn(CostPhase::kOnlineTraining) +
         SecondsIn(CostPhase::kProactiveTraining) +
         SecondsIn(CostPhase::kRetraining);
}

void CostModel::Reset() {
  seconds_.fill(0.0);
  work_.fill(0);
}

std::string CostModel::ToString() const {
  std::string out = "Cost{";
  bool first = true;
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (seconds_[i] == 0.0 && work_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += StrFormat("%s: %.3fs/%lld rows",
                     CostPhaseName(static_cast<CostPhase>(i)), seconds_[i],
                     static_cast<long long>(work_[i]));
  }
  out += StrFormat("; total %.3fs}", TotalSeconds());
  return out;
}

}  // namespace cdpipe
