#include "src/core/report.h"

#include <ostream>

#include "src/common/string_util.h"

namespace cdpipe {

std::string DeploymentReport::CurveToCsv() const {
  std::string out =
      "chunk_index,observations,cumulative_error,windowed_error,"
      "cumulative_seconds,cumulative_work\n";
  for (const PointRow& row : curve) {
    out += StrFormat("%lld,%lld,%.6f,%.6f,%.4f,%lld\n",
                     static_cast<long long>(row.chunk_index),
                     static_cast<long long>(row.observations),
                     row.cumulative_error, row.windowed_error,
                     row.cumulative_seconds,
                     static_cast<long long>(row.cumulative_work));
  }
  return out;
}

std::vector<DeploymentReport::PointRow> DeploymentReport::SampledCurve(
    size_t points) const {
  if (points == 0 || curve.size() <= points) return curve;
  std::vector<PointRow> out;
  out.reserve(points);
  const double stride =
      static_cast<double>(curve.size() - 1) / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) {
    out.push_back(curve[static_cast<size_t>(i * stride + 0.5)]);
  }
  out.back() = curve.back();
  return out;
}

std::string DeploymentReport::Summary() const {
  std::string out = StrFormat(
      "%s: final %s=%.5f (avg %.5f), cost %.2fs / %lld work units, "
      "proactive=%lld (avg %.4fs), retrainings=%lld, mu=%.3f, "
      "chunks=%lld",
      strategy.c_str(), metric_name.c_str(), final_error, average_error,
      total_seconds, static_cast<long long>(total_work),
      static_cast<long long>(proactive_iterations), average_proactive_seconds,
      static_cast<long long>(retrainings), empirical_mu,
      static_cast<long long>(chunks_processed));
  if (chunks_spilled > 0) {
    out += StrFormat(
        ", spilled=%lld (ratio %.2f), mu_mem=%.3f mu_disk=%.3f, "
        "prefetch_hit_rate=%.2f",
        static_cast<long long>(chunks_spilled), spill_compression_ratio,
        memory_mu, disk_mu, prefetch_hit_rate);
  }
  if (ingest_offered > 0) {
    out += StrFormat(
        ", ingest offered=%lld shed=%lld (oldest=%lld newest=%lld "
        "timeout=%lld) degraded_admits=%lld peak_queue=%lld, "
        "proactive_deferred=%lld, publish_skipped=%lld "
        "max_staleness=%lld chunks",
        static_cast<long long>(ingest_offered),
        static_cast<long long>(ingest_shed),
        static_cast<long long>(ingest_shed_oldest),
        static_cast<long long>(ingest_shed_newest),
        static_cast<long long>(ingest_shed_timeout),
        static_cast<long long>(ingest_degraded_admits),
        static_cast<long long>(ingest_peak_queue_depth),
        static_cast<long long>(proactive_deferred),
        static_cast<long long>(publish_skipped_overload),
        static_cast<long long>(max_snapshot_staleness_chunks));
  }
  if (serving_shed > 0) {
    out += StrFormat(", serving_shed=%lld",
                     static_cast<long long>(serving_shed));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const DeploymentReport& report) {
  return os << report.Summary();
}

}  // namespace cdpipe
