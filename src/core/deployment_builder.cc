#include "src/core/deployment_builder.h"

namespace cdpipe {

Status DeploymentBuilder::CheckIngredients() const {
  if (pipeline_ == nullptr) {
    return Status::FailedPrecondition("DeploymentBuilder: Pipeline() not set");
  }
  if (model_ == nullptr) {
    return Status::FailedPrecondition("DeploymentBuilder: Model() not set");
  }
  if (optimizer_ == nullptr) {
    return Status::FailedPrecondition(
        "DeploymentBuilder: Optimizer() not set");
  }
  if (metric_ == nullptr) {
    return Status::FailedPrecondition("DeploymentBuilder: Metric() not set");
  }
  return Status::OK();
}

Result<std::unique_ptr<OnlineDeployment>> DeploymentBuilder::BuildOnline() {
  CDPIPE_RETURN_NOT_OK(CheckIngredients());
  return std::make_unique<OnlineDeployment>(
      std::move(options_), std::move(pipeline_), std::move(model_),
      std::move(optimizer_), std::move(metric_));
}

Result<std::unique_ptr<PeriodicalDeployment>>
DeploymentBuilder::BuildPeriodical() {
  CDPIPE_RETURN_NOT_OK(CheckIngredients());
  return std::make_unique<PeriodicalDeployment>(
      std::move(options_), std::move(periodical_), std::move(pipeline_),
      std::move(model_), std::move(optimizer_), std::move(metric_));
}

Result<std::unique_ptr<ContinuousDeployment>>
DeploymentBuilder::BuildContinuous() {
  CDPIPE_RETURN_NOT_OK(CheckIngredients());
  return std::make_unique<ContinuousDeployment>(
      std::move(options_), std::move(continuous_), std::move(pipeline_),
      std::move(model_), std::move(optimizer_), std::move(metric_));
}

}  // namespace cdpipe
