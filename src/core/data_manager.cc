#include "src/core/data_manager.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/storage/prefetcher.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

obs::Heartbeat* IngestHeartbeat() {
  static obs::Heartbeat* heartbeat =
      obs::HealthRegistry::Global().GetHeartbeat("ingest");
  return heartbeat;
}

}  // namespace

DataManager::DataManager(ChunkStore::Options store_options,
                         std::unique_ptr<Sampler> sampler)
    : store_(store_options), sampler_(std::move(sampler)) {
  CDPIPE_CHECK(sampler_ != nullptr);
}

DataManager::~DataManager() = default;

Result<ChunkId> DataManager::IngestRecords(std::vector<std::string> records,
                                           int64_t event_time_seconds) {
  RawChunk chunk;
  chunk.id = next_id_;
  chunk.event_time_seconds = event_time_seconds;
  chunk.records = std::move(records);
  CDPIPE_RETURN_NOT_OK(store_.PutRaw(std::move(chunk)));
  return next_id_++;
}

Status DataManager::IngestChunk(RawChunk chunk) {
  if (chunk.id < next_id_) {
    return Status::InvalidArgument(
        "chunk id " + std::to_string(chunk.id) +
        " is not beyond the last assigned id " + std::to_string(next_id_ - 1));
  }
  // Advance next_id_ only after the store accepted the chunk: a failed
  // (e.g. transiently faulted) PutRaw must leave the manager unchanged so
  // the same chunk can be retried.
  const ChunkId id = chunk.id;
  const size_t records = chunk.records.size();
  obs::Heartbeat::WorkScope work(IngestHeartbeat());
  CDPIPE_RETURN_NOT_OK(store_.PutRaw(std::move(chunk)));
  next_id_ = id + 1;
  obs::EventJournal::Global().Append(
      obs::EventKind::kIngest, obs::CorrelationScope::WithEntity(id),
      StrFormat("records=%zu", records).c_str());
  return Status::OK();
}

Status DataManager::StoreFeatures(FeatureChunk chunk) {
  return store_.PutFeatures(std::move(chunk));
}

Result<DataManager::SampleSet> DataManager::SampleForTraining(
    size_t sample_size, Rng* rng) {
  CDPIPE_CHECK(rng != nullptr);
  if (store_.num_raw() == 0) {
    return Status::FailedPrecondition("no chunks available to sample");
  }
  const std::vector<ChunkId> live = store_.LiveIds();
  const std::vector<ChunkId> picked = sampler_->Sample(live, sample_size, rng);
  SampleSet out;
  out.materialized.reserve(picked.size());
  obs::EventJournal& journal = obs::EventJournal::Global();
  for (ChunkId id : picked) {
    // Evict-heavy fault scenario: memory pressure evicts the sampled
    // chunk's features right before the access, forcing the
    // re-materialization path.  The μ accounting below then records an
    // honest miss.
    if (CDPIPE_FAULT_TRIGGERED("chunk_store.forced_eviction")) {
      store_.Evict(id);
    }
    store_.RecordSampleAccess(id);
    if (const FeatureChunk* features = store_.GetFeatures(id)) {
      out.materialized.push_back(features);
      journal.Append(obs::EventKind::kMaterializeHit,
                     obs::CorrelationScope::WithEntity(id));
    } else {
      const RawChunk* raw = store_.FetchRaw(id);
      if (raw == nullptr) {
        if (!store_.spilling_enabled()) {
          CDPIPE_CHECK(raw != nullptr) << "sampler returned a dead chunk id";
        }
        // Disk tier degraded under us (corrupt file dropped, read failure):
        // train on one chunk fewer rather than fail the sample.
        journal.Append(obs::EventKind::kDegrade,
                       obs::CorrelationScope::WithEntity(id),
                       "sample_chunk_unavailable");
        continue;
      }
      out.to_rematerialize.push_back(raw);
      journal.Append(obs::EventKind::kMaterializeMiss,
                     obs::CorrelationScope::WithEntity(id));
    }
  }
  journal.Append(obs::EventKind::kSample,
                 StrFormat("hits=%zu misses=%zu", out.materialized.size(),
                           out.to_rematerialize.size())
                     .c_str());
  return out;
}

void DataManager::set_sampler(std::unique_ptr<Sampler> sampler) {
  CDPIPE_CHECK(sampler != nullptr);
  sampler_ = std::move(sampler);
}

void DataManager::EnablePrefetch(ExecutionEngine* engine) {
  CDPIPE_CHECK(engine != nullptr);
  prefetcher_ = std::make_unique<Prefetcher>(&store_, engine);
}

void DataManager::DisablePrefetch() { prefetcher_.reset(); }

void DataManager::PrefetchForNextSample(size_t sample_size,
                                        size_t chunks_ahead, const Rng& rng) {
  if (prefetcher_ == nullptr || !store_.spilling_enabled()) return;
  // The live-id list at the next sample: today's chunks plus the
  // `chunks_ahead` consecutive ids about to be ingested, trimmed to the
  // retention bound from the front exactly as the store will trim it.
  std::vector<ChunkId> future = store_.LiveIds();
  future.reserve(future.size() + chunks_ahead);
  for (size_t i = 0; i < chunks_ahead; ++i) {
    future.push_back(next_id_ + static_cast<ChunkId>(i));
  }
  const size_t max_raw = store_.options().max_raw_chunks;
  if (max_raw > 0 && future.size() > max_raw) {
    future.erase(future.begin(),
                 future.begin() + static_cast<ptrdiff_t>(future.size() -
                                                         max_raw));
  }
  Rng clone = rng;
  prefetcher_->Schedule(sampler_->Sample(future, sample_size, &clone));
}

}  // namespace cdpipe
