#include "src/core/data_manager.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

obs::Heartbeat* IngestHeartbeat() {
  static obs::Heartbeat* heartbeat =
      obs::HealthRegistry::Global().GetHeartbeat("ingest");
  return heartbeat;
}

}  // namespace

DataManager::DataManager(ChunkStore::Options store_options,
                         std::unique_ptr<Sampler> sampler)
    : store_(store_options), sampler_(std::move(sampler)) {
  CDPIPE_CHECK(sampler_ != nullptr);
}

Result<ChunkId> DataManager::IngestRecords(std::vector<std::string> records,
                                           int64_t event_time_seconds) {
  RawChunk chunk;
  chunk.id = next_id_;
  chunk.event_time_seconds = event_time_seconds;
  chunk.records = std::move(records);
  CDPIPE_RETURN_NOT_OK(store_.PutRaw(std::move(chunk)));
  return next_id_++;
}

Status DataManager::IngestChunk(RawChunk chunk) {
  if (chunk.id < next_id_) {
    return Status::InvalidArgument(
        "chunk id " + std::to_string(chunk.id) +
        " is not beyond the last assigned id " + std::to_string(next_id_ - 1));
  }
  // Advance next_id_ only after the store accepted the chunk: a failed
  // (e.g. transiently faulted) PutRaw must leave the manager unchanged so
  // the same chunk can be retried.
  const ChunkId id = chunk.id;
  const size_t records = chunk.records.size();
  obs::Heartbeat::WorkScope work(IngestHeartbeat());
  CDPIPE_RETURN_NOT_OK(store_.PutRaw(std::move(chunk)));
  next_id_ = id + 1;
  obs::EventJournal::Global().Append(
      obs::EventKind::kIngest, obs::CorrelationScope::WithEntity(id),
      StrFormat("records=%zu", records).c_str());
  return Status::OK();
}

Status DataManager::StoreFeatures(FeatureChunk chunk) {
  return store_.PutFeatures(std::move(chunk));
}

Result<DataManager::SampleSet> DataManager::SampleForTraining(
    size_t sample_size, Rng* rng) {
  CDPIPE_CHECK(rng != nullptr);
  if (store_.num_raw() == 0) {
    return Status::FailedPrecondition("no chunks available to sample");
  }
  const std::vector<ChunkId> live = store_.LiveIds();
  const std::vector<ChunkId> picked = sampler_->Sample(live, sample_size, rng);
  SampleSet out;
  out.materialized.reserve(picked.size());
  obs::EventJournal& journal = obs::EventJournal::Global();
  for (ChunkId id : picked) {
    // Evict-heavy fault scenario: memory pressure evicts the sampled
    // chunk's features right before the access, forcing the
    // re-materialization path.  The μ accounting below then records an
    // honest miss.
    if (CDPIPE_FAULT_TRIGGERED("chunk_store.forced_eviction")) {
      store_.Evict(id);
    }
    store_.RecordSampleAccess(id);
    if (const FeatureChunk* features = store_.GetFeatures(id)) {
      out.materialized.push_back(features);
      journal.Append(obs::EventKind::kMaterializeHit,
                     obs::CorrelationScope::WithEntity(id));
    } else {
      const RawChunk* raw = store_.GetRaw(id);
      CDPIPE_CHECK(raw != nullptr) << "sampler returned a dead chunk id";
      out.to_rematerialize.push_back(raw);
      journal.Append(obs::EventKind::kMaterializeMiss,
                     obs::CorrelationScope::WithEntity(id));
    }
  }
  journal.Append(obs::EventKind::kSample,
                 StrFormat("hits=%zu misses=%zu", out.materialized.size(),
                           out.to_rematerialize.size())
                     .c_str());
  return out;
}

void DataManager::set_sampler(std::unique_ptr<Sampler> sampler) {
  CDPIPE_CHECK(sampler != nullptr);
  sampler_ = std::move(sampler);
}

}  // namespace cdpipe
