#ifndef CDPIPE_CORE_REPORT_H_
#define CDPIPE_CORE_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/cost_model.h"
#include "src/obs/metrics.h"
#include "src/storage/chunk_store.h"

namespace cdpipe {

/// Everything a deployment run produces: the quality curve (prequential
/// error over time), the cost curve (cumulative seconds and work units),
/// and the final counters — the raw material for every figure and table in
/// the paper's evaluation.
struct DeploymentReport {
  /// One row per processed chunk.
  struct PointRow {
    int64_t chunk_index = 0;
    int64_t observations = 0;        ///< prequential observations so far
    double cumulative_error = 0.0;   ///< cumulative prequential metric
    double windowed_error = 0.0;     ///< sliding-window metric
    double cumulative_seconds = 0.0; ///< total cost so far (wall clock)
    int64_t cumulative_work = 0;     ///< total work units so far
  };

  std::string strategy;
  std::string metric_name;
  std::vector<PointRow> curve;

  double final_error = 0.0;
  double average_error = 0.0;  ///< mean of the per-chunk cumulative metric
  double total_seconds = 0.0;
  int64_t total_work = 0;

  CostModel cost;
  ChunkStore::Counters storage;
  /// Per-run delta of the global metrics registry (counters and histogram
  /// buckets recorded during this Run; gauges hold end-of-run values).
  /// Export with obs::ToJson / obs::ToPrometheusText.
  obs::MetricsSnapshot metrics;
  double empirical_mu = 0.0;
  int64_t proactive_iterations = 0;
  double average_proactive_seconds = 0.0;
  int64_t retrainings = 0;
  int64_t drift_events = 0;
  int64_t chunks_processed = 0;
  int64_t initial_training_epochs = 0;

  /// Robustness accounting for this run (derived from the metrics delta):
  /// fired fault-injection sites, transient retries, operations whose
  /// retries were exhausted, and degradation events (chunks processed
  /// without storage, left unmaterialized, or dropped from a proactive
  /// sample).  All zero in a healthy, uninstrumented run.
  int64_t faults_injected = 0;
  int64_t retry_attempts = 0;
  int64_t retries_exhausted = 0;
  int64_t degraded_events = 0;
  int64_t proactive_chunks_skipped = 0;

  /// Serving-tier accounting for this run (all zero when no serving
  /// attachment): requests answered / errored by the prediction front-end,
  /// snapshot epochs published, reader-observed epoch regressions (0
  /// unless the swap protocol is broken), and serve-eval requests that
  /// fell back to the in-loop evaluate path (counted in degraded_events).
  int64_t serving_requests = 0;
  int64_t serving_errors = 0;
  int64_t serving_stale_reads = 0;
  int64_t snapshot_publishes = 0;
  int64_t serving_eval_fallbacks = 0;
  /// Prediction requests rejected by the serving front-end's bounded queue
  /// (admission timeout).  The serving-side twin of `ingest_shed`.
  int64_t serving_shed = 0;

  /// Overload-resilience accounting (all zero in a plain Run — only
  /// RunShaped attaches an AdmissionController).  The identities
  /// `ingest_offered == ingest_admitted + ingest_shed_newest +
  /// ingest_shed_timeout` and `chunks_processed == ingest_admitted -
  /// ingest_shed_oldest` hold exactly; shed counts depend only on arrival
  /// times and admission options, never on injected faults or threads.
  int64_t ingest_offered = 0;
  int64_t ingest_admitted = 0;
  int64_t ingest_degraded_admits = 0;
  int64_t ingest_shed = 0;
  int64_t ingest_shed_oldest = 0;
  int64_t ingest_shed_newest = 0;
  int64_t ingest_shed_timeout = 0;
  int64_t ingest_pressure_changes = 0;
  int64_t ingest_peak_queue_depth = 0;
  /// Proactive iterations deferred because the ingest load state was not
  /// normal when they came due.
  int64_t proactive_deferred = 0;
  /// Per-chunk snapshot publishes skipped by the overload gate, and the
  /// worst served-model staleness that gating caused (in chunks; bounded by
  /// Options::publish_staleness_bound_chunks).
  int64_t publish_skipped_overload = 0;
  int64_t max_snapshot_staleness_chunks = 0;

  /// Two-tier storage accounting (all zero without a disk tier): μ split by
  /// the tier the sampled chunk's raw bytes occupied, the prefetcher's
  /// share of disk loads, and the spill codec's compressed-to-raw ratio.
  /// The raw counts live in `storage`.
  double memory_mu = 0.0;
  double disk_mu = 0.0;
  double prefetch_hit_rate = 0.0;
  double spill_compression_ratio = 0.0;
  int64_t chunks_spilled = 0;
  int64_t disk_loads = 0;
  int64_t prefetch_hits = 0;
  int64_t spill_failures = 0;
  int64_t spill_corrupt_detected = 0;

  /// Serializes the curve as CSV with a header row.
  std::string CurveToCsv() const;

  /// Downsamples the curve to at most `points` rows (for compact figures).
  std::vector<PointRow> SampledCurve(size_t points) const;

  /// One-paragraph human-readable summary.
  std::string Summary() const;
};

std::ostream& operator<<(std::ostream& os, const DeploymentReport& report);

}  // namespace cdpipe

#endif  // CDPIPE_CORE_REPORT_H_
