#include "src/core/periodical_deployment.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/core/proactive_trainer.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {

PeriodicalDeployment::PeriodicalDeployment(
    Options options, PeriodicalOptions periodical_options,
    std::unique_ptr<Pipeline> pipeline, std::unique_ptr<LinearModel> model,
    std::unique_ptr<Optimizer> optimizer, std::unique_ptr<Metric> metric)
    : Deployment("periodical", std::move(options), std::move(pipeline),
                 std::move(model), std::move(optimizer), std::move(metric)),
      periodical_options_(std::move(periodical_options)) {
  CDPIPE_CHECK_GT(periodical_options_.retrain_every_chunks, 0u);
}

Status PeriodicalDeployment::AfterChunk(size_t stream_index,
                                        const RawChunk& chunk,
                                        const ChunkOutcome& outcome) {
  (void)chunk;
  bool due =
      (stream_index + 1) % periodical_options_.retrain_every_chunks == 0;

  // Velox-style error-threshold trigger (see PeriodicalOptions).
  if (periodical_options_.retrain_error_threshold > 0.0 &&
      outcome.rows > 0) {
    const double alpha = periodical_options_.error_smoothing;
    if (!smoothed_error_initialized_) {
      smoothed_error_ = outcome.mean_error_signal;
      smoothed_error_initialized_ = true;
    } else {
      smoothed_error_ =
          alpha * outcome.mean_error_signal + (1.0 - alpha) * smoothed_error_;
    }
    const bool cooled_down =
        last_retrain_chunk_ < 0 ||
        static_cast<int64_t>(stream_index) - last_retrain_chunk_ >=
            static_cast<int64_t>(
                periodical_options_.min_chunks_between_retrains);
    if (smoothed_error_ > periodical_options_.retrain_error_threshold &&
        cooled_down) {
      due = true;
    }
  }

  if (!due) return Status::OK();
  last_retrain_chunk_ = static_cast<int64_t>(stream_index);
  return Retrain();
}

Status PeriodicalDeployment::Retrain() {
  CDPIPE_TRACE_SPAN("deployment.retrain", "deployment");
  // Full retraining: preprocess the *entire* available history.  Chunks that
  // happen to be materialized are reused; in the authentic periodical
  // configuration (max_materialized_chunks = 0) everything is re-transformed
  // from raw data — the dominant cost the paper attributes to this strategy.
  const std::vector<ChunkId> live = data_manager().store().LiveIds();
  std::vector<FeatureChunk> rebuilt;
  std::vector<const FeatureData*> parts;
  parts.reserve(live.size());

  std::vector<const RawChunk*> to_transform;
  for (ChunkId id : live) {
    if (const FeatureChunk* features = data_manager().store().GetFeatures(id)) {
      parts.push_back(&features->data);
    } else {
      // FetchRaw pins disk-tier chunks until the next ingest — long enough
      // for the retraining pass below.  A null here means the disk tier
      // degraded (corrupt file dropped, read failure): retrain on the rest.
      const RawChunk* raw = data_manager().mutable_store().FetchRaw(id);
      if (raw == nullptr) {
        CDPIPE_CHECK(data_manager().store().spilling_enabled())
            << "live chunk " << id << " has no raw bytes";
        obs::EventJournal::Global().Append(
            obs::EventKind::kDegrade, obs::CorrelationScope::WithEntity(id),
            "retrain_chunk_unavailable");
        continue;
      }
      to_transform.push_back(raw);
    }
  }
  rebuilt.resize(to_transform.size());
  CDPIPE_RETURN_NOT_OK(
      engine().ParallelFor(to_transform.size(), [&](size_t i) -> Status {
        CDPIPE_ASSIGN_OR_RETURN(
            rebuilt[i], pipeline_manager().Rematerialize(*to_transform[i]));
        return Status::OK();
      }));
  for (const FeatureChunk& chunk : rebuilt) parts.push_back(&chunk.data);
  if (parts.empty()) return Status::OK();

  // Warm start (TFX): clone the deployed model + optimizer state.
  // Cold start: fresh weights, reset adaptation state.
  std::unique_ptr<LinearModel> model;
  std::unique_ptr<Optimizer> optimizer =
      pipeline_manager().optimizer().Clone();
  if (periodical_options_.warm_start) {
    model = std::make_unique<LinearModel>(pipeline_manager().model());
  } else {
    model = std::make_unique<LinearModel>(pipeline_manager().model().options());
    optimizer->Reset();
  }

  {
    CostModel::ScopedTimer timer(&cost(), CostPhase::kRetraining);
    BatchTrainer trainer(periodical_options_.retrain);
    CDPIPE_ASSIGN_OR_RETURN(
        BatchTrainer::Stats stats,
        trainer.Train(parts, model.get(), optimizer.get(), &rng(), &engine()));
    cost().AddWork(CostPhase::kRetraining, stats.examples_visited);
    retrain_epochs_total_ += stats.epochs_run;
  }

  pipeline_manager().Redeploy(std::move(model), std::move(optimizer));
  ++retrainings_;
  obs::MetricsRegistry::Global()
      .GetCounter("deployment.retrainings")
      ->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kTrainStep,
      obs::CorrelationScope::WithEntity(retrainings_), "retrain");
  return Status::OK();
}

void PeriodicalDeployment::FillReport(DeploymentReport* report) const {
  report->retrainings = retrainings_;
}

}  // namespace cdpipe
