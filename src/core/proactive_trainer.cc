#include "src/core/proactive_trainer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

struct TrainerMetrics {
  obs::Counter* iterations;
  obs::Counter* chunks_rematerialized;
  obs::Counter* chunks_skipped;
  obs::Counter* iterations_degraded;
  obs::Counter* iterations_deferred;
  obs::Counter* rows_trained;
  obs::Histogram* iteration_seconds;
  obs::Histogram* rematerialize_seconds;
  obs::Histogram* sgd_step_seconds;

  static const TrainerMetrics& Get() {
    static const TrainerMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      TrainerMetrics m;
      m.iterations = registry.GetCounter("proactive.iterations");
      m.chunks_rematerialized =
          registry.GetCounter("proactive.chunks_rematerialized");
      m.chunks_skipped = registry.GetCounter("proactive.chunks_skipped");
      m.iterations_degraded =
          registry.GetCounter("proactive.iterations_degraded");
      m.iterations_deferred = registry.GetCounter(
          "proactive.iterations_deferred",
          "Proactive iterations deferred while the ingest queue was loaded");
      m.rows_trained = registry.GetCounter("proactive.rows_trained");
      m.iteration_seconds =
          registry.GetHistogram("proactive.iteration_seconds");
      m.rematerialize_seconds =
          registry.GetHistogram("proactive.rematerialize_seconds");
      m.sgd_step_seconds = registry.GetHistogram("proactive.sgd_step_seconds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ProactiveTrainer::ProactiveTrainer(PipelineManager* pipeline_manager,
                                   ExecutionEngine* engine)
    : ProactiveTrainer(pipeline_manager, engine, Options{}) {}

ProactiveTrainer::ProactiveTrainer(PipelineManager* pipeline_manager,
                                   ExecutionEngine* engine, Options options)
    : pipeline_manager_(pipeline_manager),
      engine_(engine),
      options_(options) {
  CDPIPE_CHECK(pipeline_manager_ != nullptr);
  CDPIPE_CHECK(engine_ != nullptr);
}

Status ProactiveTrainer::RunIteration(const DataManager::SampleSet& sample) {
  CDPIPE_TRACE_SPAN("proactive.iteration", "training");
  static obs::Heartbeat* heartbeat =
      obs::HealthRegistry::Global().GetHeartbeat("trainer");
  obs::Heartbeat::WorkScope work(heartbeat);
  // Engine workers do not inherit the caller's thread-local correlation;
  // capture it here so the fan-out tasks can re-establish it per chunk.
  const obs::CorrelationId base_corr = obs::CorrelationScope::Current();
  const TrainerMetrics& metrics = TrainerMetrics::Get();
  Stopwatch watch;

  // Dynamic materialization: rebuild the evicted chunks in the sample.
  // Each chunk writes only its own slot, so failed chunks are identified
  // after the fan-out and handled individually instead of aborting the
  // whole iteration on the first error.
  const size_t num_remat = sample.to_rematerialize.size();
  std::vector<FeatureChunk> rebuilt(num_remat);
  std::vector<char> rebuilt_ok(num_remat, 0);
  {
    CDPIPE_TRACE_SPAN("proactive.rematerialize", "training");
    Stopwatch remat_watch;
    const Status engine_status =
        engine_->ParallelFor(num_remat, [&](size_t i) -> Status {
          obs::CorrelationScope scope(base_corr.deployment,
                                      sample.to_rematerialize[i]->id);
          CDPIPE_ASSIGN_OR_RETURN(
              rebuilt[i],
              pipeline_manager_->Rematerialize(*sample.to_rematerialize[i]));
          rebuilt_ok[i] = 1;
          obs::EventJournal::Global().Append(obs::EventKind::kRecompute);
          return Status::OK();
        });
    if (!engine_status.ok() && !options_.degrade_on_failure) {
      return engine_status;
    }
    // Degradation, step 1: chunks that failed in the fan-out (including
    // tasks the engine's retry policy gave up on) get one fallback
    // recomputation from the raw chunk on the caller's thread.  The engine
    // pool is drained at this point, so the fallback may shard the
    // transform across it (the fan-out tasks above must not: the pool does
    // not nest).  Step 2: chunks that still fail are dropped from this
    // iteration with a recorded warning — a smaller sample is strictly
    // better than an aborted deployment run.
    for (size_t i = 0; i < num_remat; ++i) {
      if (rebuilt_ok[i]) continue;
      const Status fallback = RetryWithBackoff(
          options_.retry, "proactive.rematerialize_fallback",
          [&]() -> Status {
            Result<FeatureChunk> chunk = pipeline_manager_->Rematerialize(
                *sample.to_rematerialize[i], engine_);
            if (!chunk.ok()) return chunk.status();
            rebuilt[i] = std::move(chunk).value();
            rebuilt_ok[i] = 1;
            return Status::OK();
          });
      if (fallback.ok()) {
        obs::EventJournal::Global().Append(
            obs::EventKind::kRecompute,
            obs::CorrelationId{base_corr.deployment,
                               sample.to_rematerialize[i]->id},
            "fallback");
      } else {
        if (!options_.degrade_on_failure) return fallback;
        ++stats_.chunks_skipped;
        metrics.chunks_skipped->Increment();
        obs::EventJournal::Global().Append(
            obs::EventKind::kDegrade,
            obs::CorrelationId{base_corr.deployment,
                               sample.to_rematerialize[i]->id},
            "chunk_skipped");
        CDPIPE_LOG(Warning)
            << "proactive training: dropping chunk "
            << sample.to_rematerialize[i]->id
            << " after failed re-materialization: " << fallback.ToString();
      }
    }
    if (num_remat > 0) {
      metrics.rematerialize_seconds->Observe(remat_watch.ElapsedSeconds());
    }
  }
  int64_t rematerialized = 0;
  for (size_t i = 0; i < num_remat; ++i) rematerialized += rebuilt_ok[i];
  stats_.chunks_rematerialized += rematerialized;
  metrics.chunks_rematerialized->Add(rematerialized);

  std::vector<const FeatureData*> parts;
  parts.reserve(sample.materialized.size() + num_remat);
  for (const FeatureChunk* chunk : sample.materialized) {
    parts.push_back(&chunk->data);
  }
  for (size_t i = 0; i < num_remat; ++i) {
    if (rebuilt_ok[i]) parts.push_back(&rebuilt[i].data);
  }

  // Zero-copy SGD step: the sampled chunks are trained on in place through
  // a BatchView — no merged FeatureData, no per-row copies, and mixed
  // nominal dims widen by picking the max as the view dim.
  uint32_t dim = 0;
  CDPIPE_ASSIGN_OR_RETURN(const std::vector<BatchView::RowRef> rows,
                          BatchView::CollectRows(parts, &dim));
  const BatchView batch(dim, rows);
  if (!batch.empty()) {
    CDPIPE_TRACE_SPAN("proactive.sgd_step", "training");
    Stopwatch sgd_watch;
    // The train step is safe to re-run after a failure: the gradient is
    // recomputed from scratch and only applied to the model at the very
    // end, so a failed attempt leaves the weights untouched.
    const Status step = RetryWithBackoff(
        options_.retry, "proactive.train_step", [&]() -> Status {
          return pipeline_manager_->TrainStep(
              batch, CostPhase::kProactiveTraining, engine_);
        });
    if (!step.ok()) {
      if (!options_.degrade_on_failure || !IsRetryable(step)) return step;
      ++stats_.iterations_degraded;
      metrics.iterations_degraded->Increment();
      obs::EventJournal::Global().Append(obs::EventKind::kDegrade,
                                         "sgd_step_skipped");
      CDPIPE_LOG(Warning) << "proactive training: skipping SGD step after "
                             "exhausted retries: "
                          << step.ToString();
    } else {
      // Entity = the step's sequence number within this trainer.
      obs::EventJournal::Global().Append(
          obs::EventKind::kTrainStep,
          obs::CorrelationId{base_corr.deployment, stats_.iterations + 1},
          StrFormat("rows=%zu", batch.num_rows()).c_str());
    }
    metrics.sgd_step_seconds->Observe(sgd_watch.ElapsedSeconds());
  }

  ++stats_.iterations;
  stats_.rows_trained += static_cast<int64_t>(batch.num_rows());
  stats_.last_duration_seconds = watch.ElapsedSeconds();
  stats_.total_duration_seconds += stats_.last_duration_seconds;
  metrics.iterations->Increment();
  metrics.rows_trained->Add(static_cast<int64_t>(batch.num_rows()));
  metrics.iteration_seconds->Observe(stats_.last_duration_seconds);
  return Status::OK();
}

void ProactiveTrainer::RecordDeferred(LoadState state) {
  ++stats_.iterations_deferred;
  TrainerMetrics::Get().iterations_deferred->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kDegrade,
      StrFormat("proactive_deferred state=%s", LoadStateName(state)).c_str());
  CDPIPE_LOG(Info) << "proactive training: iteration deferred, ingest "
                   << LoadStateName(state);
}

}  // namespace cdpipe
