#include "src/core/proactive_trainer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

struct TrainerMetrics {
  obs::Counter* iterations;
  obs::Counter* chunks_rematerialized;
  obs::Counter* rows_trained;
  obs::Histogram* iteration_seconds;
  obs::Histogram* rematerialize_seconds;
  obs::Histogram* sgd_step_seconds;

  static const TrainerMetrics& Get() {
    static const TrainerMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      TrainerMetrics m;
      m.iterations = registry.GetCounter("proactive.iterations");
      m.chunks_rematerialized =
          registry.GetCounter("proactive.chunks_rematerialized");
      m.rows_trained = registry.GetCounter("proactive.rows_trained");
      m.iteration_seconds =
          registry.GetHistogram("proactive.iteration_seconds");
      m.rematerialize_seconds =
          registry.GetHistogram("proactive.rematerialize_seconds");
      m.sgd_step_seconds = registry.GetHistogram("proactive.sgd_step_seconds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

FeatureData MergeFeatureData(const std::vector<const FeatureData*>& parts) {
  FeatureData out;
  size_t total_rows = 0;
  for (const FeatureData* part : parts) {
    CDPIPE_CHECK(part != nullptr);
    out.dim = std::max(out.dim, part->dim);
    total_rows += part->num_rows();
  }
  out.features.reserve(total_rows);
  out.labels.reserve(total_rows);
  for (const FeatureData* part : parts) {
    for (size_t r = 0; r < part->num_rows(); ++r) {
      const SparseVector& x = part->features[r];
      if (x.dim() == out.dim) {
        out.features.push_back(x);
      } else {
        // Widen the nominal dimension; indices are untouched.
        out.features.push_back(std::move(x.WithDim(out.dim)).ValueOrDie());
      }
      out.labels.push_back(part->labels[r]);
    }
  }
  return out;
}

ProactiveTrainer::ProactiveTrainer(PipelineManager* pipeline_manager,
                                   ExecutionEngine* engine)
    : pipeline_manager_(pipeline_manager), engine_(engine) {
  CDPIPE_CHECK(pipeline_manager_ != nullptr);
  CDPIPE_CHECK(engine_ != nullptr);
}

Status ProactiveTrainer::RunIteration(const DataManager::SampleSet& sample) {
  CDPIPE_TRACE_SPAN("proactive.iteration", "training");
  const TrainerMetrics& metrics = TrainerMetrics::Get();
  Stopwatch watch;

  // Dynamic materialization: rebuild the evicted chunks in the sample.
  std::vector<FeatureChunk> rebuilt(sample.to_rematerialize.size());
  {
    CDPIPE_TRACE_SPAN("proactive.rematerialize", "training");
    Stopwatch remat_watch;
    CDPIPE_RETURN_NOT_OK(engine_->ParallelFor(
        sample.to_rematerialize.size(), [&](size_t i) -> Status {
          CDPIPE_ASSIGN_OR_RETURN(
              rebuilt[i],
              pipeline_manager_->Rematerialize(*sample.to_rematerialize[i]));
          return Status::OK();
        }));
    if (!sample.to_rematerialize.empty()) {
      metrics.rematerialize_seconds->Observe(remat_watch.ElapsedSeconds());
    }
  }
  stats_.chunks_rematerialized +=
      static_cast<int64_t>(sample.to_rematerialize.size());
  metrics.chunks_rematerialized->Add(
      static_cast<int64_t>(sample.to_rematerialize.size()));

  std::vector<const FeatureData*> parts;
  parts.reserve(sample.materialized.size() + rebuilt.size());
  for (const FeatureChunk* chunk : sample.materialized) {
    parts.push_back(&chunk->data);
  }
  for (const FeatureChunk& chunk : rebuilt) parts.push_back(&chunk.data);

  // Zero-copy SGD step: the sampled chunks are trained on in place through
  // a BatchView — no merged FeatureData, no per-row copies, and mixed
  // nominal dims widen by picking the max as the view dim.
  uint32_t dim = 0;
  CDPIPE_ASSIGN_OR_RETURN(const std::vector<BatchView::RowRef> rows,
                          BatchView::CollectRows(parts, &dim));
  const BatchView batch(dim, rows);
  if (!batch.empty()) {
    CDPIPE_TRACE_SPAN("proactive.sgd_step", "training");
    Stopwatch sgd_watch;
    CDPIPE_RETURN_NOT_OK(pipeline_manager_->TrainStep(
        batch, CostPhase::kProactiveTraining, engine_));
    metrics.sgd_step_seconds->Observe(sgd_watch.ElapsedSeconds());
  }

  ++stats_.iterations;
  stats_.rows_trained += static_cast<int64_t>(batch.num_rows());
  stats_.last_duration_seconds = watch.ElapsedSeconds();
  stats_.total_duration_seconds += stats_.last_duration_seconds;
  metrics.iterations->Increment();
  metrics.rows_trained->Add(static_cast<int64_t>(batch.num_rows()));
  metrics.iteration_seconds->Observe(stats_.last_duration_seconds);
  return Status::OK();
}

}  // namespace cdpipe
