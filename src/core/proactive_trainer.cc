#include "src/core/proactive_trainer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"

namespace cdpipe {

FeatureData MergeFeatureData(const std::vector<const FeatureData*>& parts) {
  FeatureData out;
  size_t total_rows = 0;
  for (const FeatureData* part : parts) {
    CDPIPE_CHECK(part != nullptr);
    out.dim = std::max(out.dim, part->dim);
    total_rows += part->num_rows();
  }
  out.features.reserve(total_rows);
  out.labels.reserve(total_rows);
  for (const FeatureData* part : parts) {
    for (size_t r = 0; r < part->num_rows(); ++r) {
      const SparseVector& x = part->features[r];
      if (x.dim() == out.dim) {
        out.features.push_back(x);
      } else {
        // Widen the nominal dimension; indices are untouched.
        out.features.push_back(
            std::move(SparseVector::FromSorted(
                          out.dim, std::vector<uint32_t>(x.indices()),
                          std::vector<double>(x.values())))
                .ValueOrDie());
      }
      out.labels.push_back(part->labels[r]);
    }
  }
  return out;
}

ProactiveTrainer::ProactiveTrainer(PipelineManager* pipeline_manager,
                                   ExecutionEngine* engine)
    : pipeline_manager_(pipeline_manager), engine_(engine) {
  CDPIPE_CHECK(pipeline_manager_ != nullptr);
  CDPIPE_CHECK(engine_ != nullptr);
}

Status ProactiveTrainer::RunIteration(const DataManager::SampleSet& sample) {
  Stopwatch watch;

  // Dynamic materialization: rebuild the evicted chunks in the sample.
  std::vector<FeatureChunk> rebuilt(sample.to_rematerialize.size());
  CDPIPE_RETURN_NOT_OK(engine_->ParallelFor(
      sample.to_rematerialize.size(), [&](size_t i) -> Status {
        CDPIPE_ASSIGN_OR_RETURN(
            rebuilt[i],
            pipeline_manager_->Rematerialize(*sample.to_rematerialize[i]));
        return Status::OK();
      }));
  stats_.chunks_rematerialized +=
      static_cast<int64_t>(sample.to_rematerialize.size());

  std::vector<const FeatureData*> parts;
  parts.reserve(sample.materialized.size() + rebuilt.size());
  for (const FeatureChunk* chunk : sample.materialized) {
    parts.push_back(&chunk->data);
  }
  for (const FeatureChunk& chunk : rebuilt) parts.push_back(&chunk.data);

  const FeatureData batch = MergeFeatureData(parts);
  if (batch.num_rows() > 0) {
    CDPIPE_RETURN_NOT_OK(
        pipeline_manager_->TrainStep(batch, CostPhase::kProactiveTraining));
  }

  ++stats_.iterations;
  stats_.rows_trained += static_cast<int64_t>(batch.num_rows());
  stats_.last_duration_seconds = watch.ElapsedSeconds();
  stats_.total_duration_seconds += stats_.last_duration_seconds;
  return Status::OK();
}

}  // namespace cdpipe
