#ifndef CDPIPE_CORE_COST_MODEL_H_
#define CDPIPE_CORE_COST_MODEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/stopwatch.h"

namespace cdpipe {

/// The cost phases the paper's evaluation separates: "we measure the time
/// the platforms spend in updating the model, performing proactive training
/// (retraining for the periodical scenario), and answering prediction
/// queries" (§5.1), with data preprocessing accounted explicitly.
enum class CostPhase {
  kPreprocessing = 0,    ///< pipeline statistics update + transform
  kOnlineTraining,       ///< per-chunk online SGD updates
  kProactiveTraining,    ///< proactive mini-batch iterations (continuous)
  kRetraining,           ///< full retraining (periodical)
  kMaterialization,      ///< re-materializing evicted feature chunks
  kPrediction,           ///< answering prediction queries
  kSpill,                ///< encoding + writing raw chunks to the disk tier
  kDiskLoad,             ///< reading + decoding spilled chunks (sync or
                         ///< prefetch — disk latency either way)
  kNumPhases,
};

const char* CostPhaseName(CostPhase phase);

/// Accumulates deployment cost along two axes:
///
///  - wall-clock seconds per phase (what the paper reports), and
///  - deterministic work units (rows scanned / gradient rows / predictions),
///    which make the *shape* of every cost figure reproducible regardless of
///    the machine the benchmark runs on.
/// Thread-safe: accumulators are relaxed atomics, so parallel engine tasks
/// (re-materialization fan-out) account their work without a lock.  Work
/// units are integers — parallel accounting stays exact and
/// order-independent.
class CostModel {
 public:
  CostModel() = default;
  CostModel(const CostModel& other);
  CostModel& operator=(const CostModel& other);

  void AddSeconds(CostPhase phase, double seconds);
  void AddWork(CostPhase phase, int64_t rows);

  double SecondsIn(CostPhase phase) const;
  int64_t WorkIn(CostPhase phase) const;

  /// Total deployment cost in seconds (sum over phases).
  double TotalSeconds() const;
  /// Total work units (sum over phases).
  int64_t TotalWork() const;
  /// Training-only cost (online + proactive + retraining seconds).
  double TrainingSeconds() const;

  void Reset();

  std::string ToString() const;

  /// RAII timer: adds the elapsed wall time to `phase` on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(CostModel* model, CostPhase phase)
        : model_(model), phase_(phase) {}
    ~ScopedTimer() { model_->AddSeconds(phase_, watch_.ElapsedSeconds()); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    CostModel* model_;
    CostPhase phase_;
    Stopwatch watch_;
  };

 private:
  static constexpr size_t kNumPhases =
      static_cast<size_t>(CostPhase::kNumPhases);
  std::array<std::atomic<double>, kNumPhases> seconds_{};
  std::array<std::atomic<int64_t>, kNumPhases> work_{};
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_COST_MODEL_H_
