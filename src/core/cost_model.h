#ifndef CDPIPE_CORE_COST_MODEL_H_
#define CDPIPE_CORE_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/stopwatch.h"

namespace cdpipe {

/// The cost phases the paper's evaluation separates: "we measure the time
/// the platforms spend in updating the model, performing proactive training
/// (retraining for the periodical scenario), and answering prediction
/// queries" (§5.1), with data preprocessing accounted explicitly.
enum class CostPhase {
  kPreprocessing = 0,    ///< pipeline statistics update + transform
  kOnlineTraining,       ///< per-chunk online SGD updates
  kProactiveTraining,    ///< proactive mini-batch iterations (continuous)
  kRetraining,           ///< full retraining (periodical)
  kMaterialization,      ///< re-materializing evicted feature chunks
  kPrediction,           ///< answering prediction queries
  kNumPhases,
};

const char* CostPhaseName(CostPhase phase);

/// Accumulates deployment cost along two axes:
///
///  - wall-clock seconds per phase (what the paper reports), and
///  - deterministic work units (rows scanned / gradient rows / predictions),
///    which make the *shape* of every cost figure reproducible regardless of
///    the machine the benchmark runs on.
class CostModel {
 public:
  CostModel() = default;

  void AddSeconds(CostPhase phase, double seconds);
  void AddWork(CostPhase phase, int64_t rows);

  double SecondsIn(CostPhase phase) const;
  int64_t WorkIn(CostPhase phase) const;

  /// Total deployment cost in seconds (sum over phases).
  double TotalSeconds() const;
  /// Total work units (sum over phases).
  int64_t TotalWork() const;
  /// Training-only cost (online + proactive + retraining seconds).
  double TrainingSeconds() const;

  void Reset();

  std::string ToString() const;

  /// RAII timer: adds the elapsed wall time to `phase` on destruction.
  class ScopedTimer {
   public:
    ScopedTimer(CostModel* model, CostPhase phase)
        : model_(model), phase_(phase) {}
    ~ScopedTimer() { model_->AddSeconds(phase_, watch_.ElapsedSeconds()); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

   private:
    CostModel* model_;
    CostPhase phase_;
    Stopwatch watch_;
  };

 private:
  static constexpr size_t kNumPhases =
      static_cast<size_t>(CostPhase::kNumPhases);
  std::array<double, kNumPhases> seconds_{};
  std::array<int64_t, kNumPhases> work_{};
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_COST_MODEL_H_
