#ifndef CDPIPE_CORE_PERIODICAL_DEPLOYMENT_H_
#define CDPIPE_CORE_PERIODICAL_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/deployment.h"
#include "src/ml/trainer.h"

namespace cdpipe {

/// The **periodical** deployment baseline (§5.2): online learning between
/// retrainings, plus a full retraining over all available historical data
/// every `retrain_every_chunks` chunks (every 10 days for URL, monthly for
/// Taxi in the paper).  Supports TFX-style warm starting: the retraining
/// reuses the deployed model weights, learning-rate adaptation state, and
/// (implicitly — they are shared) the pipeline statistics.
///
/// The expense of this strategy is intrinsic: every retraining must
/// preprocess the entire history again (feature chunks are not materialized
/// in the classic periodical platform; configure `store.max_materialized_
/// chunks = 0` to reproduce that) and then iterate SGD to convergence.
class PeriodicalDeployment final : public Deployment {
 public:
  struct PeriodicalOptions {
    size_t retrain_every_chunks = 1000;
    /// TFX-style warm starting (§5.2): start retraining from the deployed
    /// weights and optimizer state instead of from scratch.
    bool warm_start = true;
    BatchTrainer::Options retrain;

    /// Velox-style triggering (paper §6: "Velox monitors the error rate of
    /// the model ... once the error rate exceeds a predefined threshold,
    /// Velox initiates a retraining"): when > 0, a retraining also fires as
    /// soon as the smoothed per-chunk prequential error exceeds this
    /// threshold, independent of the fixed interval.
    double retrain_error_threshold = 0.0;
    /// EWMA factor for the smoothed error signal the threshold tests.
    double error_smoothing = 0.2;
    /// Cool-down so a slow-to-recover error cannot trigger back-to-back
    /// retrainings.
    size_t min_chunks_between_retrains = 10;
  };

  PeriodicalDeployment(Options options, PeriodicalOptions periodical_options,
                       std::unique_ptr<Pipeline> pipeline,
                       std::unique_ptr<LinearModel> model,
                       std::unique_ptr<Optimizer> optimizer,
                       std::unique_ptr<Metric> metric);

  int64_t retrainings() const { return retrainings_; }

 protected:
  Status AfterChunk(size_t stream_index, const RawChunk& chunk,
                    const ChunkOutcome& outcome) override;
  void FillReport(DeploymentReport* report) const override;

 private:
  Status Retrain();

  PeriodicalOptions periodical_options_;
  int64_t retrainings_ = 0;
  int64_t retrain_epochs_total_ = 0;
  double smoothed_error_ = 0.0;
  bool smoothed_error_initialized_ = false;
  int64_t last_retrain_chunk_ = -1;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_PERIODICAL_DEPLOYMENT_H_
