#ifndef CDPIPE_CORE_ADMISSION_H_
#define CDPIPE_CORE_ADMISSION_H_

#include <cstdint>
#include <deque>

#include "src/dataframe/chunk.h"

namespace cdpipe {

/// Ingest load state, derived from the admission queue depth with
/// hysteresis.  Gates proactive training and serving publish cadence: under
/// pressure the deployment keeps serving and online-learning but defers the
/// optional work (proactive iterations, per-chunk republishes) until the
/// backlog drains.
enum class LoadState : uint8_t {
  kNormal = 0,     ///< depth at or below the low watermark
  kPressured = 1,  ///< between watermarks, rising
  kOverloaded = 2, ///< reached the high watermark; sticky until <= low
};

const char* LoadStateName(LoadState state);

/// What to do with an arriving chunk when the bounded ingest queue is under
/// pressure or full.
enum class AdmissionPolicy : uint8_t {
  /// Producer waits (in virtual time) up to `block_timeout_seconds` for a
  /// queue slot; the incoming chunk is shed when the timeout expires first.
  kBlock = 0,
  /// Full queue: drop the oldest queued chunk to admit the newest (fresh
  /// data wins — the continuous-learning default for drifting streams).
  kShedOldest,
  /// Full queue: drop the incoming chunk (queued work wins).
  kShedNewest,
  /// Admit everything that fits, but flag chunks arriving under pressure as
  /// degraded: the deployment skips their feature materialization (they stay
  /// recoverable via dynamic materialization).  A hard-full queue still
  /// sheds the incoming chunk — capacity is a memory bound, not a hint.
  kDegrade,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

/// Bounded ingest admission between the stream readers and the deployment
/// loop: a FIFO queue with a hard capacity, watermark-driven load states,
/// and a selectable overflow policy.
///
/// All timing is *virtual*: chunk arrival times come from the stream's
/// event clock (the traffic shaper writes them) and the consumer drains one
/// chunk every `service_seconds_per_chunk` of that same clock.  Admission
/// decisions therefore depend only on (arrival times, options) — never on
/// wall clock or thread scheduling — so shed/degrade counts are exactly
/// reproducible, at any engine thread count, and a control run whose queue
/// never fills admits every chunk in order (bit-identical to the unshaped
/// path).
///
/// Single-threaded by contract: the deployment Run thread owns the
/// controller (it is the simulation driver — it pops ready chunks, processes
/// them, and offers arrivals).  The gauges it exports
/// (`ingest.queue_depth`, `ingest.queue_high_watermark`,
/// `ingest.load_state`) are lock-free and readable from the obs plane.
class AdmissionController {
 public:
  struct Options {
    /// Hard bound on queued chunks — the ingest memory budget.
    size_t queue_capacity = 8;
    /// Depth at which the state becomes kOverloaded.  0 = 3/4 capacity
    /// (at least 1).
    size_t high_watermark = 0;
    /// Depth at or below which the state returns to kNormal.  0 = 1/4
    /// capacity.  Must be < high_watermark after defaulting.
    size_t low_watermark = 0;
    AdmissionPolicy policy = AdmissionPolicy::kBlock;
    /// kBlock: virtual seconds a producer waits for a slot before the
    /// incoming chunk is shed.
    double block_timeout_seconds = 0.0;
    /// Virtual seconds the consumer spends per admitted chunk (the drain
    /// model that turns arrival times into queue depths).
    double service_seconds_per_chunk = 1.0;
  };

  /// Exact per-run accounting (mirrored into global `ingest.*` metrics).
  struct Counters {
    int64_t offered = 0;          ///< chunks presented for admission
    int64_t admitted = 0;         ///< chunks that entered the queue
    int64_t degraded_admits = 0;  ///< admitted flagged skip-materialization
    int64_t shed = 0;             ///< chunks dropped (all reasons)
    int64_t shed_oldest = 0;      ///< queued chunks displaced by newer ones
    int64_t shed_newest = 0;      ///< arrivals dropped at a full queue
    int64_t shed_timeout = 0;     ///< arrivals dropped after a block timeout
    int64_t pressure_changes = 0; ///< load-state transitions
    int64_t peak_queue_depth = 0; ///< high watermark of the queue depth
  };

  enum class Decision : uint8_t {
    kAdmitted,
    kAdmittedDegraded,
    /// Admitted; the oldest queued chunk was shed to make room.
    kAdmittedReplacedOldest,
    /// The incoming chunk was shed (kShedNewest, or kDegrade at capacity).
    kShed,
    /// kBlock policy and the queue is full: the caller must drain a chunk
    /// (virtually waiting for its completion) and re-offer, or give up via
    /// ShedBlocked once the timeout is unaffordable.  `*chunk` is untouched.
    kWouldBlock,
  };

  /// One chunk handed back to the consumer.
  struct Admitted {
    RawChunk chunk;
    /// kDegrade admission under pressure: skip feature materialization.
    bool degraded = false;
    /// Virtual time at which the consumer finishes this chunk.
    double completion_seconds = 0.0;
  };

  explicit AdmissionController(Options options);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Producer side: offers a chunk arriving at `arrival_seconds` (clamped
  /// monotonic).  Moves `*chunk` into the queue on any kAdmitted* decision;
  /// leaves it untouched on kShed / kWouldBlock.
  Decision Offer(RawChunk* chunk, double arrival_seconds);

  /// kBlock bookkeeping: records the incoming chunk as shed after its
  /// virtual wait exceeded the timeout.
  void ShedBlocked(ChunkId id);

  // --- Consumer side (the deployment loop). ---
  bool empty() const { return queue_.empty(); }
  size_t depth() const { return queue_.size(); }
  /// Virtual completion time of the head chunk.  Only valid when !empty().
  double HeadCompletionSeconds() const;
  /// True when the head chunk's service completes at or before `now`.
  bool HeadReadyAt(double now) const {
    return !queue_.empty() && HeadCompletionSeconds() <= now;
  }
  /// Pops the head and advances the drain clock to its completion time.
  Admitted Pop();

  LoadState state() const { return state_; }
  const Counters& counters() const { return counters_; }
  const Options& options() const { return options_; }
  /// Virtual time at which the consumer becomes free (monotonic across
  /// Pop calls); the arrival time a blocked producer re-offers with.
  double drain_free_at() const { return drain_free_at_; }

 private:
  struct Entry {
    RawChunk chunk;
    bool degraded = false;
    double arrival_seconds = 0.0;
  };

  void UpdateStateAndGauges();

  Options options_;
  std::deque<Entry> queue_;
  LoadState state_ = LoadState::kNormal;
  Counters counters_;
  double drain_free_at_ = 0.0;
  double last_offer_seconds_ = 0.0;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_ADMISSION_H_
