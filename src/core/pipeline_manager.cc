#include "src/core/pipeline_manager.h"

#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {

PipelineManager::PipelineManager(std::unique_ptr<Pipeline> pipeline,
                                 std::unique_ptr<LinearModel> model,
                                 std::unique_ptr<Optimizer> optimizer,
                                 CostModel* cost, Options options)
    : pipeline_(std::move(pipeline)),
      model_(std::move(model)),
      optimizer_(std::move(optimizer)),
      cost_(cost),
      options_(options) {
  CDPIPE_CHECK(pipeline_ != nullptr);
  CDPIPE_CHECK(model_ != nullptr);
  CDPIPE_CHECK(optimizer_ != nullptr);
  CDPIPE_CHECK(cost_ != nullptr);
}

Result<FeatureChunk> PipelineManager::OnlineStep(
    const RawChunk& chunk, PrequentialEvaluator* evaluator,
    bool online_learn) {
  CDPIPE_TRACE_SPAN("pipeline.online_step", "pipeline");
  CDPIPE_ASSIGN_OR_RETURN(FeatureChunk out, PreprocessChunk(chunk));
  if (evaluator != nullptr) {
    EvaluateFeatures(out.data, evaluator);
  }
  if (online_learn) {
    CDPIPE_RETURN_NOT_OK(OnlineUpdate(out.data));
  }
  return out;
}

Result<FeatureChunk> PipelineManager::PreprocessChunk(const RawChunk& chunk) {
  // Online statistics computation + transform.
  FeatureData features;
  {
    CDPIPE_TRACE_SPAN("pipeline.preprocess", "pipeline");
    CostModel::ScopedTimer timer(cost_, CostPhase::kPreprocessing);
    size_t rows_scanned = 0;
    // The online path always folds statistics in — the NoOptimization
    // baseline (§5.4) differs on the *reuse* side: Rematerialize below
    // rescans sampled chunks to rebuild statistics instead of reading the
    // ones maintained here.
    CDPIPE_ASSIGN_OR_RETURN(
        features, pipeline_->UpdateAndTransform(chunk, &rows_scanned));
    cost_->AddWork(CostPhase::kPreprocessing,
                   static_cast<int64_t>(rows_scanned));
  }
  FeatureChunk out;
  out.origin_id = chunk.id;
  out.event_time_seconds = chunk.event_time_seconds;
  out.data = std::move(features);
  return out;
}

void PipelineManager::EvaluateFeatures(const FeatureData& features,
                                       PrequentialEvaluator* evaluator) {
  if (evaluator == nullptr) return;
  // Prequential evaluation with the pre-update model.
  CDPIPE_TRACE_SPAN("pipeline.predict", "ml");
  CostModel::ScopedTimer timer(cost_, CostPhase::kPrediction);
  for (size_t r = 0; r < features.num_rows(); ++r) {
    evaluator->Observe(model_->Predict(features.features[r]),
                       features.labels[r]);
  }
  cost_->AddWork(CostPhase::kPrediction,
                 static_cast<int64_t>(features.num_rows()));
}

Status PipelineManager::OnlineUpdate(const FeatureData& features) {
  // Online learning: one SGD update over the chunk.
  if (features.num_rows() == 0) return Status::OK();
  CDPIPE_TRACE_SPAN("pipeline.online_sgd", "ml");
  CostModel::ScopedTimer timer(cost_, CostPhase::kOnlineTraining);
  model_->EnsureDim(features.dim);
  CDPIPE_RETURN_NOT_OK(model_->Update(features, optimizer_.get()));
  cost_->AddWork(CostPhase::kOnlineTraining,
                 static_cast<int64_t>(features.num_rows()));
  return Status::OK();
}

uint64_t PipelineManager::PublishSnapshot() {
  if (publisher_ == nullptr) return 0;
  return publisher_->PublishFrom(*pipeline_, *model_);
}

Result<FeatureChunk> PipelineManager::Rematerialize(
    const RawChunk& chunk, ExecutionEngine* engine) const {
  CDPIPE_TRACE_SPAN("chunk_store.rematerialize", "storage");
  CDPIPE_FAULT_POINT("pipeline.rematerialize");
  CostModel::ScopedTimer timer(cost_, CostPhase::kMaterialization);
  size_t rows_scanned = 0;
  Result<FeatureData> features =
      options_.online_statistics
          ? pipeline_->Transform(chunk, engine, &rows_scanned)
          : pipeline_->TransformRecomputingStatistics(chunk, &rows_scanned);
  cost_->AddWork(CostPhase::kMaterialization,
                 static_cast<int64_t>(rows_scanned));
  if (!features.ok()) return features.status();
  FeatureChunk out;
  out.origin_id = chunk.id;
  out.event_time_seconds = chunk.event_time_seconds;
  out.data = std::move(features).value();
  return out;
}

Result<FeatureData> PipelineManager::TransformForInference(
    const RawChunk& queries, ExecutionEngine* engine) const {
  CostModel::ScopedTimer timer(cost_, CostPhase::kPrediction);
  size_t rows_scanned = 0;
  CDPIPE_ASSIGN_OR_RETURN(FeatureData features,
                          pipeline_->Transform(queries, engine, &rows_scanned));
  cost_->AddWork(CostPhase::kPrediction, static_cast<int64_t>(rows_scanned));
  return features;
}

Status PipelineManager::TrainStep(const FeatureData& batch, CostPhase phase) {
  CDPIPE_TRACE_SPAN("pipeline.train_step", "ml");
  CostModel::ScopedTimer timer(cost_, phase);
  model_->EnsureDim(batch.dim);
  CDPIPE_RETURN_NOT_OK(model_->Update(batch, optimizer_.get()));
  cost_->AddWork(phase, static_cast<int64_t>(batch.num_rows()));
  return Status::OK();
}

Status PipelineManager::TrainStep(const BatchView& batch, CostPhase phase,
                                  ExecutionEngine* engine) {
  CDPIPE_TRACE_SPAN("pipeline.train_step", "ml");
  CostModel::ScopedTimer timer(cost_, phase);
  model_->EnsureDim(batch.dim());
  CDPIPE_RETURN_NOT_OK(model_->Update(batch, optimizer_.get(), engine));
  cost_->AddWork(phase, static_cast<int64_t>(batch.num_rows()));
  return Status::OK();
}

void PipelineManager::Redeploy(std::unique_ptr<LinearModel> model,
                               std::unique_ptr<Optimizer> optimizer) {
  CDPIPE_CHECK(model != nullptr);
  CDPIPE_CHECK(optimizer != nullptr);
  model_ = std::move(model);
  optimizer_ = std::move(optimizer);
  PublishSnapshot();
}

void PipelineManager::Restore(std::unique_ptr<Pipeline> pipeline,
                              std::unique_ptr<LinearModel> model,
                              std::unique_ptr<Optimizer> optimizer) {
  CDPIPE_CHECK(pipeline != nullptr);
  CDPIPE_CHECK(model != nullptr);
  CDPIPE_CHECK(optimizer != nullptr);
  pipeline_ = std::move(pipeline);
  model_ = std::move(model);
  optimizer_ = std::move(optimizer);
  PublishSnapshot();
}

}  // namespace cdpipe
