#include "src/core/admission.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace {

struct AdmissionMetrics {
  obs::Counter* offered;
  obs::Counter* admitted;
  obs::Counter* degraded_admits;
  obs::Counter* shed;
  obs::Counter* pressure_changes;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_high_watermark;
  obs::Gauge* load_state;

  static const AdmissionMetrics& Get() {
    static const AdmissionMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      AdmissionMetrics m;
      m.offered = registry.GetCounter("ingest.offered",
                                      "Chunks presented for admission");
      m.admitted = registry.GetCounter("ingest.admitted",
                                       "Chunks admitted into the ingest queue");
      m.degraded_admits = registry.GetCounter(
          "ingest.degraded_admits",
          "Chunks admitted under pressure with materialization skipped");
      m.shed = registry.GetCounter("ingest.shed",
                                   "Chunks dropped by admission control");
      m.pressure_changes = registry.GetCounter(
          "ingest.pressure_changes", "Ingest load-state transitions");
      m.queue_depth =
          registry.GetGauge("ingest.queue_depth", "Queued ingest chunks");
      m.queue_high_watermark = registry.GetGauge(
          "ingest.queue_high_watermark", "Peak ingest queue depth");
      m.load_state = registry.GetGauge(
          "ingest.load_state",
          "Ingest load state (0=normal 1=pressured 2=overloaded)");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

const char* LoadStateName(LoadState state) {
  switch (state) {
    case LoadState::kNormal:
      return "normal";
    case LoadState::kPressured:
      return "pressured";
    case LoadState::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kShedOldest:
      return "shed_oldest";
    case AdmissionPolicy::kShedNewest:
      return "shed_newest";
    case AdmissionPolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

AdmissionController::AdmissionController(Options options)
    : options_(options) {
  CDPIPE_CHECK_GT(options_.queue_capacity, 0u);
  if (options_.high_watermark == 0) {
    options_.high_watermark =
        std::max<size_t>(1, options_.queue_capacity * 3 / 4);
  }
  if (options_.low_watermark == 0) {
    options_.low_watermark = options_.queue_capacity / 4;
  }
  options_.high_watermark =
      std::min(options_.high_watermark, options_.queue_capacity);
  CDPIPE_CHECK(options_.low_watermark < options_.high_watermark)
      << "low watermark " << options_.low_watermark
      << " must be below high watermark " << options_.high_watermark;
  CDPIPE_CHECK_GT(options_.service_seconds_per_chunk, 0.0);
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.queue_depth->Set(0.0);
  metrics.load_state->Set(0.0);
}

AdmissionController::~AdmissionController() {
  // Never leave a stale overload verdict on the obs plane after the run's
  // controller is gone (/readyz reads this gauge).
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.queue_depth->Set(0.0);
  metrics.load_state->Set(0.0);
}

double AdmissionController::HeadCompletionSeconds() const {
  CDPIPE_CHECK(!queue_.empty());
  return std::max(drain_free_at_, queue_.front().arrival_seconds) +
         options_.service_seconds_per_chunk;
}

AdmissionController::Admitted AdmissionController::Pop() {
  CDPIPE_CHECK(!queue_.empty());
  Admitted out;
  out.completion_seconds = HeadCompletionSeconds();
  out.chunk = std::move(queue_.front().chunk);
  out.degraded = queue_.front().degraded;
  queue_.pop_front();
  drain_free_at_ = out.completion_seconds;
  UpdateStateAndGauges();
  return out;
}

AdmissionController::Decision AdmissionController::Offer(
    RawChunk* chunk, double arrival_seconds) {
  CDPIPE_CHECK(chunk != nullptr);
  const double now = std::max(arrival_seconds, last_offer_seconds_);
  last_offer_seconds_ = now;
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();

  if (queue_.size() >= options_.queue_capacity &&
      options_.policy == AdmissionPolicy::kBlock) {
    // The caller owns the virtual wait: drain-and-re-offer, or ShedBlocked.
    return Decision::kWouldBlock;
  }

  counters_.offered += 1;
  metrics.offered->Increment();

  Decision decision = Decision::kAdmitted;
  if (queue_.size() >= options_.queue_capacity) {
    switch (options_.policy) {
      case AdmissionPolicy::kShedOldest: {
        const ChunkId victim = queue_.front().chunk.id;
        queue_.pop_front();
        counters_.shed += 1;
        counters_.shed_oldest += 1;
        metrics.shed->Increment();
        obs::EventJournal::Global().Append(
            obs::EventKind::kShed,
            StrFormat("reason=oldest id=%lld depth=%zu",
                      static_cast<long long>(victim), queue_.size())
                .c_str());
        decision = Decision::kAdmittedReplacedOldest;
        break;
      }
      case AdmissionPolicy::kShedNewest:
      case AdmissionPolicy::kDegrade: {
        // kDegrade softens pressure but the capacity stays a hard memory
        // bound: a full queue sheds the arrival.
        counters_.shed += 1;
        counters_.shed_newest += 1;
        metrics.shed->Increment();
        obs::EventJournal::Global().Append(
            obs::EventKind::kShed,
            StrFormat("reason=newest id=%lld depth=%zu",
                      static_cast<long long>(chunk->id), queue_.size())
                .c_str());
        return Decision::kShed;
      }
      case AdmissionPolicy::kBlock:
        break;  // handled above
    }
  }

  Entry entry;
  entry.degraded = options_.policy == AdmissionPolicy::kDegrade &&
                   state_ != LoadState::kNormal;
  entry.arrival_seconds = now;
  const ChunkId id = chunk->id;
  entry.chunk = std::move(*chunk);
  queue_.push_back(std::move(entry));

  counters_.admitted += 1;
  metrics.admitted->Increment();
  if (queue_.back().degraded) {
    counters_.degraded_admits += 1;
    metrics.degraded_admits->Increment();
    if (decision == Decision::kAdmitted) decision = Decision::kAdmittedDegraded;
  }
  obs::EventJournal::Global().Append(
      obs::EventKind::kAdmit,
      StrFormat("id=%lld depth=%zu state=%s%s", static_cast<long long>(id),
                queue_.size(), LoadStateName(state_),
                queue_.back().degraded ? " degraded" : "")
          .c_str());
  UpdateStateAndGauges();
  return decision;
}

void AdmissionController::ShedBlocked(ChunkId id) {
  counters_.offered += 1;
  counters_.shed += 1;
  counters_.shed_timeout += 1;
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  metrics.offered->Increment();
  metrics.shed->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kShed,
      StrFormat("reason=timeout id=%lld depth=%zu",
                static_cast<long long>(id), queue_.size())
          .c_str());
}

void AdmissionController::UpdateStateAndGauges() {
  const size_t depth = queue_.size();
  LoadState next;
  if (depth >= options_.high_watermark) {
    next = LoadState::kOverloaded;
  } else if (depth <= options_.low_watermark) {
    next = LoadState::kNormal;
  } else {
    // Mid-band keeps the overload verdict sticky (hysteresis) so the gates
    // don't flap around the high watermark.
    next = state_ == LoadState::kOverloaded ? LoadState::kOverloaded
                                            : LoadState::kPressured;
  }
  const AdmissionMetrics& metrics = AdmissionMetrics::Get();
  if (next != state_) {
    counters_.pressure_changes += 1;
    metrics.pressure_changes->Increment();
    obs::EventJournal::Global().Append(
        obs::EventKind::kPressureChange,
        StrFormat("%s->%s depth=%zu", LoadStateName(state_),
                  LoadStateName(next), depth)
            .c_str());
    CDPIPE_LOG(Info) << "admission: load state " << LoadStateName(state_)
                     << " -> " << LoadStateName(next) << " at depth " << depth;
    state_ = next;
  }
  counters_.peak_queue_depth =
      std::max(counters_.peak_queue_depth, static_cast<int64_t>(depth));
  metrics.queue_depth->Set(static_cast<double>(depth));
  metrics.queue_high_watermark->Set(
      static_cast<double>(counters_.peak_queue_depth));
  metrics.load_state->Set(static_cast<double>(static_cast<int>(state_)));
}

}  // namespace cdpipe
