#ifndef CDPIPE_CORE_CONTINUOUS_DEPLOYMENT_H_
#define CDPIPE_CORE_CONTINUOUS_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/deployment.h"
#include "src/core/proactive_trainer.h"
#include "src/drift/drift_detector.h"
#include "src/sampling/sampler.h"
#include "src/scheduler/scheduler.h"

namespace cdpipe {

/// The paper's **continuous** deployment: online learning on arriving data
/// plus scheduled proactive training over samples of the historical data —
/// no full retraining, ever.
class ContinuousDeployment final : public Deployment {
 public:
  struct ContinuousOptions {
    /// Static schedule: run proactive training every k incoming chunks
    /// (the paper's URL/Taxi runs use the equivalent of k = 5).  Ignored
    /// when `scheduler` is provided.
    size_t proactive_every_chunks = 5;
    /// Chunks per proactive sample (s in the μ analysis).
    size_t sample_chunks = 100;
    /// Optional time-based scheduler (static or dynamic, §4.1).  When set,
    /// chunk event times drive the schedule instead of chunk counts.
    std::unique_ptr<Scheduler> scheduler;

    /// Native concept-drift alleviation (the paper's future work, §7):
    /// when set, the detector watches the per-chunk prequential error; a
    /// confirmed drift triggers `drift_burst_iterations` extra proactive
    /// iterations sampled from the most recent `drift_window_chunks`
    /// chunks (recent data reflects the new concept), then the detector is
    /// reset.
    std::unique_ptr<DriftDetector> drift_detector;
    size_t drift_burst_iterations = 3;
    size_t drift_window_chunks = 20;
  };

  ContinuousDeployment(Options options, ContinuousOptions continuous_options,
                       std::unique_ptr<Pipeline> pipeline,
                       std::unique_ptr<LinearModel> model,
                       std::unique_ptr<Optimizer> optimizer,
                       std::unique_ptr<Metric> metric);

  const ProactiveTrainer::Stats& proactive_stats() const {
    return trainer_.stats();
  }
  int64_t drift_events() const { return drift_events_; }

 protected:
  Status AfterChunk(size_t stream_index, const RawChunk& chunk,
                    const ChunkOutcome& outcome) override;
  void FillReport(DeploymentReport* report) const override;

 private:
  bool ProactiveDue(size_t stream_index, const RawChunk& chunk);
  Status RunDriftBurst();

  ContinuousOptions continuous_options_;
  ProactiveTrainer trainer_;
  int64_t drift_events_ = 0;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_CONTINUOUS_DEPLOYMENT_H_
