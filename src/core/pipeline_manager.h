#ifndef CDPIPE_CORE_PIPELINE_MANAGER_H_
#define CDPIPE_CORE_PIPELINE_MANAGER_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/core/cost_model.h"
#include "src/dataframe/chunk.h"
#include "src/ml/linear_model.h"
#include "src/ml/optimizer.h"
#include "src/ml/prequential.h"
#include "src/pipeline/pipeline.h"
#include "src/serving/snapshot_publisher.h"

namespace cdpipe {

/// The central component of the deployment platform (paper §4.3): owns the
/// deployed pipeline, model, and optimizer; runs the online path for
/// arriving chunks; answers prediction queries; and re-materializes evicted
/// feature chunks — always through the *same* pipeline object, which is what
/// guarantees train/serve consistency.
class PipelineManager {
 public:
  struct Options {
    /// Online statistics computation (§3.1).  When disabled (the
    /// NoOptimization baseline of §5.4), re-materialization recomputes
    /// component statistics by rescanning the sampled chunk.
    bool online_statistics = true;
  };

  PipelineManager(std::unique_ptr<Pipeline> pipeline,
                  std::unique_ptr<LinearModel> model,
                  std::unique_ptr<Optimizer> optimizer, CostModel* cost,
                  Options options = Options{true});

  /// The online path for one arriving training chunk:
  ///   1. update every component's statistics and transform the chunk
  ///      (preprocessing cost),
  ///   2. prequential test-then-train: evaluate the *current* model on the
  ///      transformed rows (prediction cost), feeding `evaluator`,
  ///   3. if `online_learn`, apply one online SGD update over the chunk
  ///      (online-training cost).
  /// Returns the materialized feature chunk for storage.
  Result<FeatureChunk> OnlineStep(const RawChunk& chunk,
                                  PrequentialEvaluator* evaluator,
                                  bool online_learn);

  /// The three phases of OnlineStep, exposed individually so the serving
  /// tier can interleave a snapshot publish between them (serve-then-train:
  /// publish after the statistics update, evaluate through the prediction
  /// service against that snapshot, then apply the online SGD update).
  /// `OnlineStep(c, e, l)` ≡ `PreprocessChunk(c)` + `EvaluateFeatures(f,
  /// e)` + (if l) `OnlineUpdate(f)` — bit-identical, same cost accounting.
  Result<FeatureChunk> PreprocessChunk(const RawChunk& chunk);
  void EvaluateFeatures(const FeatureData& features,
                        PrequentialEvaluator* evaluator);
  Status OnlineUpdate(const FeatureData& features);

  /// Attaches a serving snapshot publisher (nullptr detaches).  Once
  /// attached, Redeploy and Restore publish a fresh epoch automatically —
  /// the serving tier can never keep answering from a model that the
  /// deployment loop already replaced.
  void AttachPublisher(serving::SnapshotPublisher* publisher) {
    publisher_ = publisher;
  }
  serving::SnapshotPublisher* publisher() const { return publisher_; }

  /// Publishes the current deployed state as a new snapshot epoch.
  /// Returns the epoch, or 0 when no publisher is attached.
  uint64_t PublishSnapshot();

  /// Re-materializes an evicted feature chunk (transform-only; statistics
  /// untouched).  Under `online_statistics == false` this also pays the
  /// statistics-recomputation scans.  Cost lands in kMaterialization.
  ///
  /// When `engine` is non-null the transform is sharded across its workers
  /// with a fixed-order merge (bit-identical to the serial result).  Pass
  /// the engine ONLY from the caller thread — the pool does not nest, so
  /// call sites already running inside an engine task must leave it null.
  /// The statistics-recomputation path (`online_statistics == false`)
  /// always runs serially: its per-component scratch Update is a stateful
  /// whole-chunk scan that cannot be sharded.
  Result<FeatureChunk> Rematerialize(const RawChunk& chunk,
                                     ExecutionEngine* engine = nullptr) const;

  /// Transforms prediction queries and scores them (no statistics update,
  /// no label use beyond returning them for the caller's evaluation).
  /// `engine` follows the same contract as in Rematerialize.
  Result<FeatureData> TransformForInference(
      const RawChunk& queries, ExecutionEngine* engine = nullptr) const;

  /// One proactive / retraining mini-batch SGD iteration over `batch`
  /// (cost recorded under `phase`).
  Status TrainStep(const FeatureData& batch, CostPhase phase);

  /// Zero-copy variant over borrowed rows: no merged FeatureData is ever
  /// materialized.  When `engine` is non-null the gradient accumulation is
  /// sharded across its workers (bit-identical to the serial result).
  Status TrainStep(const BatchView& batch, CostPhase phase,
                   ExecutionEngine* engine = nullptr);

  const Pipeline& pipeline() const { return *pipeline_; }
  Pipeline* mutable_pipeline() { return pipeline_.get(); }
  const LinearModel& model() const { return *model_; }
  LinearModel* mutable_model() { return model_.get(); }
  const Optimizer& optimizer() const { return *optimizer_; }
  Optimizer* mutable_optimizer() { return optimizer_.get(); }
  CostModel* cost() { return cost_; }
  const Options& options() const { return options_; }

  /// Replaces the deployed model and optimizer (periodical redeployment).
  void Redeploy(std::unique_ptr<LinearModel> model,
                std::unique_ptr<Optimizer> optimizer);

  /// Atomically replaces the full deployed state — pipeline, model, and
  /// optimizer — in one step (checkpoint restore: the loader deserializes
  /// into scratch copies and commits them here only after every read
  /// succeeded, so a corrupt checkpoint can never leave partial state).
  void Restore(std::unique_ptr<Pipeline> pipeline,
               std::unique_ptr<LinearModel> model,
               std::unique_ptr<Optimizer> optimizer);

 private:
  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<LinearModel> model_;
  std::unique_ptr<Optimizer> optimizer_;
  CostModel* cost_;
  Options options_;
  serving::SnapshotPublisher* publisher_ = nullptr;  ///< not owned
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_PIPELINE_MANAGER_H_
