#ifndef CDPIPE_CORE_DATA_MANAGER_H_
#define CDPIPE_CORE_DATA_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/sampling/sampler.h"
#include "src/storage/chunk_store.h"

namespace cdpipe {

class ExecutionEngine;
class Prefetcher;

/// The platform's data manager (paper §4.2): discretizes incoming training
/// data into timestamped chunks, stores raw and feature chunks, and serves
/// samples for proactive training, distinguishing chunks that are
/// materialized from those that must be re-materialized.
class DataManager {
 public:
  /// The result of one sampling operation: which sampled chunks can be used
  /// directly and which must be re-materialized from their raw chunks.
  struct SampleSet {
    std::vector<const FeatureChunk*> materialized;
    std::vector<const RawChunk*> to_rematerialize;

    size_t num_chunks() const {
      return materialized.size() + to_rematerialize.size();
    }
  };

  DataManager(ChunkStore::Options store_options,
              std::unique_ptr<Sampler> sampler);
  ~DataManager();

  /// Discretization (workflow step 1): wraps `records` into a chunk with the
  /// next timestamp id and appends it to the raw log.  Returns the id.
  Result<ChunkId> IngestRecords(std::vector<std::string> records,
                                int64_t event_time_seconds);

  /// Appends an externally discretized chunk; its id must exceed all ids
  /// ingested so far.
  Status IngestChunk(RawChunk chunk);

  /// Stores a transformed feature chunk (workflow step 2).
  Status StoreFeatures(FeatureChunk chunk);

  /// Workflow steps 3-4: samples `sample_size` chunks using the configured
  /// strategy and splits them by materialization status.  Records hit/miss
  /// counters for the μ accounting.  Pointers remain valid until the next
  /// mutation of the store.
  Result<SampleSet> SampleForTraining(size_t sample_size, Rng* rng);

  const ChunkStore& store() const { return store_; }
  ChunkStore& mutable_store() { return store_; }
  const Sampler& sampler() const { return *sampler_; }

  /// Swaps the sampling strategy (e.g. mid-experiment ablations).
  void set_sampler(std::unique_ptr<Sampler> sampler);

  /// Attaches an async prefetcher running on `engine`'s async lane.  Only
  /// meaningful when the store's disk tier is configured; `engine` must
  /// outlive this manager.
  void EnablePrefetch(ExecutionEngine* engine);
  /// Drains and destroys the prefetcher.  Must run while the engine passed
  /// to EnablePrefetch is still alive.
  void DisablePrefetch();
  bool prefetch_enabled() const { return prefetcher_ != nullptr; }

  /// Predicts the chunk ids the *next* SampleForTraining call will draw —
  /// the sampler is deterministic and `*rng` is cloned, not consumed — and
  /// stages the spilled ones in the background.  `chunks_ahead` is how many
  /// not-yet-ingested chunks will arrive before that sample (their ids are
  /// the next consecutive timestamps).  No-op without a prefetcher or disk
  /// tier.  Purely an overlap optimization: results are bit-identical with
  /// or without it.
  void PrefetchForNextSample(size_t sample_size, size_t chunks_ahead,
                             const Rng& rng);

  ChunkId next_id() const { return next_id_; }

 private:
  ChunkStore store_;
  std::unique_ptr<Sampler> sampler_;
  ChunkId next_id_ = 0;
  /// Declared after store_: its destructor drains the async loads that
  /// touch the store.
  std::unique_ptr<Prefetcher> prefetcher_;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_DATA_MANAGER_H_
