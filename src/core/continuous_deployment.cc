#include "src/core/continuous_deployment.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {

ContinuousDeployment::ContinuousDeployment(
    Options options, ContinuousOptions continuous_options,
    std::unique_ptr<Pipeline> pipeline, std::unique_ptr<LinearModel> model,
    std::unique_ptr<Optimizer> optimizer, std::unique_ptr<Metric> metric)
    : Deployment("continuous", std::move(options), std::move(pipeline),
                 std::move(model), std::move(optimizer), std::move(metric)),
      continuous_options_(std::move(continuous_options)),
      trainer_(&pipeline_manager(), &engine(),
               ProactiveTrainer::Options{this->options().retry,
                                         this->options().degrade_on_failure}) {
  CDPIPE_CHECK_GT(continuous_options_.proactive_every_chunks, 0u);
  CDPIPE_CHECK_GT(continuous_options_.sample_chunks, 0u);
}

bool ContinuousDeployment::ProactiveDue(size_t stream_index,
                                        const RawChunk& chunk) {
  if (continuous_options_.scheduler != nullptr) {
    return continuous_options_.scheduler->ShouldTrain(
        static_cast<double>(chunk.event_time_seconds));
  }
  return (stream_index + 1) % continuous_options_.proactive_every_chunks == 0;
}

Status ContinuousDeployment::AfterChunk(size_t stream_index,
                                        const RawChunk& chunk,
                                        const ChunkOutcome& outcome) {
  // Concept-drift alleviation: watch the per-chunk prequential error and
  // react immediately with a burst of recency-focused proactive training.
  if (continuous_options_.drift_detector != nullptr && outcome.rows > 0) {
    const DriftState state =
        continuous_options_.drift_detector->Observe(
            outcome.mean_error_signal);
    if (state == DriftState::kDrift) {
      ++drift_events_;
      obs::MetricsRegistry::Global()
          .GetCounter("deployment.drift_events")
          ->Increment();
      obs::EventJournal::Global().Append(
          obs::EventKind::kDriftTrigger,
          StrFormat("error=%.4f", outcome.mean_error_signal).c_str());
      if (load_state() == LoadState::kNormal) {
        CDPIPE_RETURN_NOT_OK(RunDriftBurst());
      } else {
        // Overload gating: a drift burst is the most expensive optional
        // work there is — shed it first and keep draining the backlog.
        // The detector stays reset so it can re-fire once load recovers.
        trainer_.RecordDeferred(load_state());
      }
      continuous_options_.drift_detector->Reset();
    }
  }

  // Feed the dynamic scheduler the measured prediction load (§4.1: pr =
  // queries per second of event time, pl = seconds per query).
  if (continuous_options_.scheduler != nullptr && outcome.rows > 0 &&
      outcome.event_period_seconds > 0.0) {
    continuous_options_.scheduler->OnPredictionLoad(
        static_cast<double>(outcome.rows) / outcome.event_period_seconds,
        outcome.prediction_seconds / static_cast<double>(outcome.rows));
  }

  if (!ProactiveDue(stream_index, chunk)) return Status::OK();

  // Overload gating: an iteration that comes due while the ingest queue is
  // pressured or overloaded is deferred — online learning and serving keep
  // running, the backlog drains first, and the next due iteration trains
  // as usual once load returns to normal.
  if (load_state() != LoadState::kNormal) {
    trainer_.RecordDeferred(load_state());
    return Status::OK();
  }

  CDPIPE_TRACE_SPAN("deployment.proactive", "deployment");
  CDPIPE_ASSIGN_OR_RETURN(
      DataManager::SampleSet sample,
      data_manager().SampleForTraining(continuous_options_.sample_chunks,
                                       &rng()));
  CDPIPE_RETURN_NOT_OK(trainer_.RunIteration(sample));
  // A proactive step changed the deployed model: publish a fresh serving
  // epoch immediately (no-op when no serving tier is attached).
  pipeline_manager().PublishSnapshot();

  if (continuous_options_.scheduler != nullptr) {
    continuous_options_.scheduler->OnTrainingCompleted(
        static_cast<double>(chunk.event_time_seconds),
        trainer_.stats().last_duration_seconds);
  } else {
    // Static schedule: the next proactive sample is exactly
    // `proactive_every_chunks` chunks away and the rng state it will see is
    // the one we hold right now — predict its picks and stage any spilled
    // chunks while the stream keeps flowing.  (A drift burst in between
    // consumes rng draws and wastes the prefetch; correctness is
    // unaffected.)  No-op without a disk tier.
    data_manager().PrefetchForNextSample(
        continuous_options_.sample_chunks,
        continuous_options_.proactive_every_chunks, rng());
  }
  return Status::OK();
}

Status ContinuousDeployment::RunDriftBurst() {
  CDPIPE_TRACE_SPAN("deployment.drift_burst", "deployment");
  // Sample only from the freshest chunks — they reflect the new concept.
  WindowSampler window(continuous_options_.drift_window_chunks);
  for (size_t i = 0; i < continuous_options_.drift_burst_iterations; ++i) {
    const std::vector<ChunkId> live = data_manager().store().LiveIds();
    const std::vector<ChunkId> picked = window.Sample(
        live, continuous_options_.sample_chunks, &rng());
    DataManager::SampleSet sample;
    for (ChunkId id : picked) {
      data_manager().mutable_store().RecordSampleAccess(id);
      if (const FeatureChunk* features =
              data_manager().store().GetFeatures(id)) {
        sample.materialized.push_back(features);
      } else if (const RawChunk* raw =
                     data_manager().mutable_store().FetchRaw(id)) {
        sample.to_rematerialize.push_back(raw);
      }
    }
    CDPIPE_RETURN_NOT_OK(trainer_.RunIteration(sample));
  }
  pipeline_manager().PublishSnapshot();
  return Status::OK();
}

void ContinuousDeployment::FillReport(DeploymentReport* report) const {
  report->proactive_iterations = trainer_.stats().iterations;
  report->average_proactive_seconds = trainer_.stats().AverageDurationSeconds();
  report->drift_events = drift_events_;
}

}  // namespace cdpipe
