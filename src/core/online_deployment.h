#ifndef CDPIPE_CORE_ONLINE_DEPLOYMENT_H_
#define CDPIPE_CORE_ONLINE_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/deployment.h"

namespace cdpipe {

/// The **online** deployment baseline (§5.2): the deployed model is updated
/// only by online gradient descent on each arriving chunk — every training
/// point is visited exactly once, which is cheap but noise-sensitive.
class OnlineDeployment final : public Deployment {
 public:
  OnlineDeployment(Options options, std::unique_ptr<Pipeline> pipeline,
                   std::unique_ptr<LinearModel> model,
                   std::unique_ptr<Optimizer> optimizer,
                   std::unique_ptr<Metric> metric)
      : Deployment("online", std::move(options), std::move(pipeline),
                   std::move(model), std::move(optimizer),
                   std::move(metric)) {}

 protected:
  Status AfterChunk(size_t stream_index, const RawChunk& chunk,
                    const ChunkOutcome& outcome) override {
    (void)stream_index;
    (void)chunk;
    (void)outcome;
    return Status::OK();
  }
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_ONLINE_DEPLOYMENT_H_
