#ifndef CDPIPE_CORE_PROACTIVE_TRAINER_H_
#define CDPIPE_CORE_PROACTIVE_TRAINER_H_

#include <vector>

#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/core/admission.h"
#include "src/core/data_manager.h"
#include "src/core/pipeline_manager.h"
#include "src/engine/execution_engine.h"

namespace cdpipe {

/// Executes proactive training (paper §3.3 / §4.4): each invocation is
/// exactly one iteration of mini-batch SGD over a sample of the historical
/// data.  Evicted chunks in the sample are first re-materialized through
/// the deployed pipeline (dynamic materialization, §3.2) — in parallel when
/// the execution engine has more than one thread.
///
/// Because the optimizer carries all cross-iteration state (model weights,
/// learning-rate adaptation), iterations are conditionally independent and
/// can run at arbitrary times without any warm-up.
class ProactiveTrainer {
 public:
  struct Options {
    /// Applied to the serial re-materialization fallback and to the SGD
    /// step (the engine applies its own policy to parallel tasks).
    RetryPolicy retry;
    /// Graceful degradation: when a sampled chunk cannot be
    /// re-materialized even after retries and a serial fallback, skip it
    /// with a recorded warning (`proactive.chunks_skipped`) instead of
    /// aborting the run; likewise a train step that keeps failing
    /// transiently skips the iteration.  Disabled, any failure propagates.
    bool degrade_on_failure = true;
  };

  struct Stats {
    int64_t iterations = 0;
    int64_t rows_trained = 0;
    int64_t chunks_rematerialized = 0;
    /// Sampled chunks dropped from their iteration after re-materialization
    /// failed beyond recovery (degraded mode only).
    int64_t chunks_skipped = 0;
    /// Iterations whose SGD step was abandoned after retries.
    int64_t iterations_degraded = 0;
    /// Iterations that came due while the ingest load state was not normal
    /// and were deferred (overload gating — shed optional work first).
    int64_t iterations_deferred = 0;
    double last_duration_seconds = 0.0;
    double total_duration_seconds = 0.0;

    double AverageDurationSeconds() const {
      return iterations > 0 ? total_duration_seconds /
                                  static_cast<double>(iterations)
                            : 0.0;
    }
  };

  ProactiveTrainer(PipelineManager* pipeline_manager, ExecutionEngine* engine);
  ProactiveTrainer(PipelineManager* pipeline_manager, ExecutionEngine* engine,
                   Options options);

  /// One proactive iteration over an already-drawn sample.
  Status RunIteration(const DataManager::SampleSet& sample);

  /// Records an iteration that came due but was deferred by overload gating
  /// (`proactive.iterations_deferred`; journaled as a kDegrade event).
  void RecordDeferred(LoadState state);

  const Stats& stats() const { return stats_; }

 private:
  PipelineManager* pipeline_manager_;
  ExecutionEngine* engine_;
  Options options_;
  Stats stats_;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_PROACTIVE_TRAINER_H_
