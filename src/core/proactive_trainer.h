#ifndef CDPIPE_CORE_PROACTIVE_TRAINER_H_
#define CDPIPE_CORE_PROACTIVE_TRAINER_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/data_manager.h"
#include "src/core/pipeline_manager.h"
#include "src/engine/execution_engine.h"

namespace cdpipe {

/// Merges feature chunks (possibly with different nominal dims, e.g. when a
/// one-hot dictionary grew between materializations) into one training
/// batch whose dim is the maximum of the inputs.
FeatureData MergeFeatureData(const std::vector<const FeatureData*>& parts);

/// Executes proactive training (paper §3.3 / §4.4): each invocation is
/// exactly one iteration of mini-batch SGD over a sample of the historical
/// data.  Evicted chunks in the sample are first re-materialized through
/// the deployed pipeline (dynamic materialization, §3.2) — in parallel when
/// the execution engine has more than one thread.
///
/// Because the optimizer carries all cross-iteration state (model weights,
/// learning-rate adaptation), iterations are conditionally independent and
/// can run at arbitrary times without any warm-up.
class ProactiveTrainer {
 public:
  struct Stats {
    int64_t iterations = 0;
    int64_t rows_trained = 0;
    int64_t chunks_rematerialized = 0;
    double last_duration_seconds = 0.0;
    double total_duration_seconds = 0.0;

    double AverageDurationSeconds() const {
      return iterations > 0 ? total_duration_seconds /
                                  static_cast<double>(iterations)
                            : 0.0;
    }
  };

  ProactiveTrainer(PipelineManager* pipeline_manager,
                   ExecutionEngine* engine);

  /// One proactive iteration over an already-drawn sample.
  Status RunIteration(const DataManager::SampleSet& sample);

  const Stats& stats() const { return stats_; }

 private:
  PipelineManager* pipeline_manager_;
  ExecutionEngine* engine_;
  Stats stats_;
};

}  // namespace cdpipe

#endif  // CDPIPE_CORE_PROACTIVE_TRAINER_H_
