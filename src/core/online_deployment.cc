#include "src/core/online_deployment.h"

// Header-only strategy; this file anchors the translation unit.

namespace cdpipe {}  // namespace cdpipe
