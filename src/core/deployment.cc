#include "src/core/deployment.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

std::atomic<uint32_t> next_deployment_id{1};

struct DeploymentMetrics {
  obs::Counter* chunks_processed;
  obs::Counter* degraded;
  obs::Counter* store_features_failed;
  obs::Counter* ingest_failed;
  obs::Counter* serving_eval_fallbacks;
  obs::Histogram* chunk_seconds;

  static const DeploymentMetrics& Get() {
    static const DeploymentMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      DeploymentMetrics m;
      m.chunks_processed = registry.GetCounter("deployment.chunks_processed");
      m.degraded = registry.GetCounter("deployment.degraded");
      m.store_features_failed =
          registry.GetCounter("deployment.store_features_failed");
      m.ingest_failed = registry.GetCounter("deployment.ingest_failed");
      m.serving_eval_fallbacks = registry.GetCounter(
          "serving.eval_fallbacks",
          "Serve-eval requests that fell back to the in-loop evaluate");
      m.chunk_seconds = registry.GetHistogram("deployment.chunk_seconds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Deployment::Deployment(std::string strategy_name, Options options,
                       std::unique_ptr<Pipeline> pipeline,
                       std::unique_ptr<LinearModel> model,
                       std::unique_ptr<Optimizer> optimizer,
                       std::unique_ptr<Metric> metric)
    : strategy_name_(std::move(strategy_name)),
      deployment_id_(
          next_deployment_id.fetch_add(1, std::memory_order_relaxed)),
      options_(std::move(options)),
      data_manager_(options_.store,
                    MakeSampler(options_.sampler, options_.sampler_window)),
      engine_(options_.engine_threads),
      pipeline_manager_(std::make_unique<PipelineManager>(
          std::move(pipeline), std::move(model), std::move(optimizer), &cost_,
          PipelineManager::Options{options_.online_statistics})),
      metric_prototype_(std::move(metric)),
      rng_(options_.seed) {
  CDPIPE_CHECK(metric_prototype_ != nullptr);
  engine_.set_retry_policy(options_.retry);
  data_manager_.mutable_store().set_cost_model(&cost_);
  // A configured disk tier gets the async prefetcher: the strategy hooks
  // predict the next sample's chunk ids and stage the spilled ones on the
  // engine's async lane while the trainer works.
  if (data_manager_.store().spilling_enabled()) {
    data_manager_.EnablePrefetch(&engine_);
  }
}

Deployment::~Deployment() {
  // The prefetcher's destructor drains the engine's async lane; detach it
  // here while the engine member is still alive (members are destroyed in
  // reverse declaration order: engine_ before data_manager_).
  data_manager_.DisablePrefetch();
}

Status Deployment::InitialTrain(const std::vector<RawChunk>& bootstrap,
                                const BatchTrainer::Options& train_options) {
  // Preprocess with statistics updates and keep the features for training.
  std::vector<FeatureChunk> transformed;
  transformed.reserve(bootstrap.size());
  for (const RawChunk& chunk : bootstrap) {
    CDPIPE_RETURN_NOT_OK(data_manager_.IngestChunk(chunk));
    CDPIPE_ASSIGN_OR_RETURN(
        FeatureChunk features,
        pipeline_manager_->OnlineStep(chunk, /*evaluator=*/nullptr,
                                      /*online_learn=*/false));
    transformed.push_back(std::move(features));
  }
  std::vector<const FeatureData*> parts;
  parts.reserve(transformed.size());
  for (const FeatureChunk& chunk : transformed) parts.push_back(&chunk.data);

  BatchTrainer trainer(train_options);
  CDPIPE_ASSIGN_OR_RETURN(
      BatchTrainer::Stats stats,
      trainer.Train(parts, pipeline_manager_->mutable_model(),
                    pipeline_manager_->mutable_optimizer(), &rng_, &engine_));
  initial_training_epochs_ = stats.epochs_run;

  // The bootstrap chunks become historical data available for sampling.
  for (FeatureChunk& chunk : transformed) {
    CDPIPE_RETURN_NOT_OK(data_manager_.StoreFeatures(std::move(chunk)));
  }
  // Initial training is not part of the deployment cost.
  cost_.Reset();
  // The initial model is the first deployed state the serving tier can
  // answer from.
  pipeline_manager_->PublishSnapshot();
  return Status::OK();
}

void Deployment::AttachServing(serving::SnapshotPublisher* publisher,
                               serving::PredictionService* service,
                               bool serve_evaluation) {
  serving_publisher_ = publisher;
  serving_service_ = service;
  serve_evaluation_ = serve_evaluation && service != nullptr;
  pipeline_manager_->AttachPublisher(publisher);
  serve_reader_ =
      publisher != nullptr
          ? std::make_unique<serving::SnapshotReader>(publisher)
          : nullptr;
}

Result<FeatureChunk> Deployment::RunOnlinePath(
    const RawChunk& chunk, PrequentialEvaluator* evaluator,
    bool gate_publish) {
  if (serving_publisher_ == nullptr) {
    return pipeline_manager_->OnlineStep(chunk, evaluator,
                                         options_.online_learning);
  }
  // Serve-then-train: update statistics and transform, publish the
  // resulting (statistics, pre-SGD model) pair as a snapshot, evaluate the
  // chunk against that snapshot — through the prediction service when
  // routed — and only then apply the online SGD update.  Publishing at
  // this exact point is what makes the served evaluation bit-identical to
  // the in-loop one: a pure Transform after UpdateAndTransform of the same
  // chunk reproduces its features exactly, and the snapshot model is the
  // same pre-update model OnlineStep evaluates with.
  CDPIPE_TRACE_SPAN("pipeline.online_step", "pipeline");
  CDPIPE_ASSIGN_OR_RETURN(FeatureChunk features,
                          pipeline_manager_->PreprocessChunk(chunk));
  // Overload gating: keep serving from the previously published epoch
  // instead of paying the per-chunk publish (the served evaluation then
  // sees a model at most `publish_staleness_bound_chunks` chunks old).
  if (!gate_publish) pipeline_manager_->PublishSnapshot();
  bool evaluated = false;
  if (serve_evaluation_ && evaluator != nullptr &&
      serving_service_ != nullptr) {
    Result<serving::PredictionService::Response> response =
        serving_service_->PredictWith(serve_reader_.get(), chunk);
    if (response.ok()) {
      CostModel::ScopedTimer timer(&cost_, CostPhase::kPrediction);
      for (size_t r = 0; r < response->scores.size(); ++r) {
        evaluator->Observe(response->scores[r], response->true_labels[r]);
      }
      cost_.AddWork(CostPhase::kPrediction,
                    static_cast<int64_t>(response->scores.size()));
      evaluated = true;
    } else {
      // A failed request (injected fault, stopped service) must not poke a
      // hole in the quality curve: fall back to the in-loop evaluate,
      // which observes the exact same (score, label) sequence.
      DeploymentMetrics::Get().serving_eval_fallbacks->Increment();
      DeploymentMetrics::Get().degraded->Increment();
      obs::EventJournal::Global().Append(obs::EventKind::kDegrade,
                                         "serving_eval_fallback");
      CDPIPE_LOG(Warning) << "deployment: serve-eval request for chunk "
                          << chunk.id << " failed, using in-loop evaluate: "
                          << response.status().ToString();
    }
  }
  if (!evaluated && evaluator != nullptr) {
    pipeline_manager_->EvaluateFeatures(features.data, evaluator);
  }
  if (options_.online_learning) {
    CDPIPE_RETURN_NOT_OK(pipeline_manager_->OnlineUpdate(features.data));
  }
  return features;
}

/// Mutable per-replay bookkeeping threaded through ProcessStreamChunk.
struct Deployment::RunState {
  PrequentialEvaluator* evaluator = nullptr;
  DeploymentReport* report = nullptr;
  obs::Heartbeat* heartbeat = nullptr;
  double sum_cumulative_error = 0.0;
  int64_t previous_event_time = 0;
  /// Chunks fully processed so far — the stream_index AfterChunk sees.
  size_t processed = 0;
  /// Chunks processed since a snapshot epoch was last published.
  size_t chunks_since_publish = 0;
  int64_t max_staleness_chunks = 0;
  int64_t publish_skipped_overload = 0;
  int64_t degraded_admit_skips = 0;
};

Status Deployment::ProcessStreamChunk(RunState* state, const RawChunk& chunk,
                                      bool degraded_admit) {
  obs::CorrelationScope chunk_scope(deployment_id_, chunk.id);
  obs::Heartbeat::WorkScope work(state->heartbeat);
  CDPIPE_TRACE_SPAN("deployment.chunk", "deployment");
  Stopwatch chunk_watch;
  // Overload publish gate: while the ingest queue is overloaded, skip this
  // chunk's snapshot publishes — unless that would push the served model
  // past the staleness bound K (a republish is forced every K-th chunk).
  const bool gate_publish =
      serving_publisher_ != nullptr &&
      options_.publish_staleness_bound_chunks > 0 &&
      load_state() == LoadState::kOverloaded &&
      state->chunks_since_publish + 1 < options_.publish_staleness_bound_chunks;
  // Ingest with retry; when a transient storage failure survives its
  // retries, degrade: process the stream's copy of the chunk online so
  // the quality curve stays continuous — the chunk is simply never
  // available for proactive sampling.  Logic errors (duplicate ids)
  // still abort.
  const Status ingest_status =
      RetryWithBackoff(options_.retry, "deployment.ingest",
                       [&]() -> Status {
                         return data_manager_.IngestChunk(chunk);
                       });
  const RawChunk* stored = nullptr;
  if (ingest_status.ok()) {
    // The store owns the canonical copy; process that one.
    stored = data_manager_.store().GetRaw(chunk.id);
    CDPIPE_CHECK(stored != nullptr);
  } else if (options_.degrade_on_failure && IsRetryable(ingest_status)) {
    DeploymentMetrics::Get().ingest_failed->Increment();
    DeploymentMetrics::Get().degraded->Increment();
    obs::EventJournal::Global().Append(obs::EventKind::kDegrade,
                                       "ingest_failed");
    CDPIPE_LOG(Warning) << "deployment: processing chunk " << chunk.id
                        << " without storage after failed ingest: "
                        << ingest_status.ToString();
    stored = &chunk;
  } else {
    return ingest_status;
  }

  PrequentialEvaluator& evaluator = *state->evaluator;
  const int64_t count_before = evaluator.Count();
  const double mass_before = evaluator.AggregateMass();
  const double prediction_seconds_before =
      cost_.SecondsIn(CostPhase::kPrediction);
  CDPIPE_ASSIGN_OR_RETURN(FeatureChunk features,
                          RunOnlinePath(*stored, &evaluator, gate_publish));
  if (ingest_status.ok() && !degraded_admit) {
    // A transiently failed materialization degrades cleanly: the chunk
    // stays unmaterialized and dynamic materialization rebuilds it on
    // demand the first time proactive training samples it.
    const Status store_status =
        data_manager_.StoreFeatures(std::move(features));
    if (!store_status.ok()) {
      if (!options_.degrade_on_failure || !IsRetryable(store_status)) {
        return store_status;
      }
      DeploymentMetrics::Get().store_features_failed->Increment();
      DeploymentMetrics::Get().degraded->Increment();
      obs::EventJournal::Global().Append(obs::EventKind::kDegrade,
                                         "store_features_failed");
      CDPIPE_LOG(Warning) << "deployment: chunk " << chunk.id
                          << " left unmaterialized: "
                          << store_status.ToString();
    }
  } else if (ingest_status.ok() && degraded_admit) {
    // kDegrade admission under pressure: the raw chunk is stored, but its
    // feature materialization is skipped to shed work — dynamic
    // materialization rebuilds it if proactive training ever samples it.
    state->degraded_admit_skips += 1;
    obs::EventJournal::Global().Append(obs::EventKind::kDegrade,
                                       "degraded_admit_skip_materialize");
  }

  ChunkOutcome outcome;
  outcome.rows = evaluator.Count() - count_before;
  outcome.mean_error_signal =
      outcome.rows > 0 ? (evaluator.AggregateMass() - mass_before) /
                             static_cast<double>(outcome.rows)
                       : 0.0;
  outcome.prediction_seconds =
      cost_.SecondsIn(CostPhase::kPrediction) - prediction_seconds_before;
  outcome.event_period_seconds = static_cast<double>(
      chunk.event_time_seconds - state->previous_event_time);
  state->previous_event_time = chunk.event_time_seconds;
  const uint64_t epoch_before_chunk =
      serving_publisher_ != nullptr ? serving_publisher_->epoch() : 0;
  CDPIPE_RETURN_NOT_OK(AfterChunk(state->processed, *stored, outcome));
  if (serving_publisher_ != nullptr &&
      serving_publisher_->epoch() == epoch_before_chunk) {
    if (gate_publish) {
      state->publish_skipped_overload += 1;
    } else {
      // The strategy hook did not publish (no proactive/retraining step
      // this chunk): expose the post-online-SGD model before the next
      // chunk arrives.  In serve-eval mode this is the cheap model-only
      // republish (statistics unchanged since the mid-chunk publish).
      pipeline_manager_->PublishSnapshot();
    }
  }
  if (serving_publisher_ != nullptr) {
    // Staleness accounting: in serve-eval mode the evaluation answered
    // *before* any publish this chunk, so a gated chunk serves a model
    // `chunks_since_publish + 1` chunks old.
    if (gate_publish) {
      state->chunks_since_publish += 1;
      state->max_staleness_chunks =
          std::max(state->max_staleness_chunks,
                   static_cast<int64_t>(state->chunks_since_publish));
    } else {
      state->chunks_since_publish = 0;
    }
  }

  DeploymentReport::PointRow row;
  row.chunk_index = static_cast<int64_t>(state->processed);
  row.observations = evaluator.Count();
  row.cumulative_error = evaluator.CumulativeValue();
  row.windowed_error = evaluator.WindowedValue();
  row.cumulative_seconds = cost_.TotalSeconds();
  row.cumulative_work = cost_.TotalWork();
  state->report->curve.push_back(row);
  state->sum_cumulative_error += row.cumulative_error;
  state->processed += 1;
  DeploymentMetrics::Get().chunks_processed->Increment();
  DeploymentMetrics::Get().chunk_seconds->Observe(
      chunk_watch.ElapsedSeconds());
  return Status::OK();
}

Result<DeploymentReport> Deployment::Run(const std::vector<RawChunk>& stream) {
  return RunImpl(stream, /*admission=*/nullptr);
}

Result<DeploymentReport> Deployment::RunShaped(
    const std::vector<RawChunk>& stream, AdmissionController* admission) {
  CDPIPE_CHECK(admission != nullptr);
  return RunImpl(stream, admission);
}

Result<DeploymentReport> Deployment::RunImpl(
    const std::vector<RawChunk>& stream, AdmissionController* admission) {
  obs::CorrelationScope run_scope(deployment_id_, /*entity=*/-1);
  CDPIPE_TRACE_SPAN("deployment.run", "deployment");
  obs::Heartbeat* heartbeat =
      obs::HealthRegistry::Global().GetHeartbeat("deployment");
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Global().Snapshot();
  cost_.Reset();
  data_manager_.mutable_store().ResetCounters();
  PrequentialEvaluator evaluator(metric_prototype_->Clone(),
                                 options_.eval_window);

  DeploymentReport report;
  report.strategy = strategy_name_;
  report.metric_name = metric_prototype_->name();
  report.curve.reserve(stream.size());

  // Serving attached: make sure an epoch exists before the first request
  // can arrive (requests against an empty publisher fail Unavailable).
  if (serving_publisher_ != nullptr) pipeline_manager_->PublishSnapshot();

  RunState state;
  state.evaluator = &evaluator;
  state.report = &report;
  state.heartbeat = heartbeat;
  state.previous_event_time =
      stream.empty() ? 0 : stream[0].event_time_seconds;

  active_admission_ = admission;
  Status replay_status = Status::OK();
  if (admission == nullptr) {
    for (const RawChunk& chunk : stream) {
      replay_status = ProcessStreamChunk(&state, chunk, /*degraded_admit=*/false);
      if (!replay_status.ok()) break;
    }
  } else {
    // Virtual-time admission simulation: arrivals on the stream's event
    // clock, one consumer draining `service_seconds_per_chunk` per chunk.
    // The Run thread drives both sides, so every decision is a pure
    // function of (arrival times, admission options) — reproducible at any
    // engine thread count and unaffected by injected storage faults.
    for (const RawChunk& next : stream) {
      const double arrival = static_cast<double>(next.event_time_seconds);
      // Process everything the consumer finished before this arrival.
      while (replay_status.ok() && admission->HeadReadyAt(arrival)) {
        AdmissionController::Admitted admitted = admission->Pop();
        replay_status =
            ProcessStreamChunk(&state, admitted.chunk, admitted.degraded);
      }
      if (!replay_status.ok()) break;
      RawChunk arriving = next;  // Offer moves the chunk on admission
      AdmissionController::Decision decision =
          admission->Offer(&arriving, arrival);
      if (decision == AdmissionController::Decision::kWouldBlock) {
        // kBlock: wait (in virtual time) for queue slots, processing the
        // chunks whose service completes meanwhile; shed once the next
        // slot would free past the timeout deadline.
        const double deadline =
            arrival + admission->options().block_timeout_seconds;
        while (decision == AdmissionController::Decision::kWouldBlock) {
          const double head_done = admission->HeadCompletionSeconds();
          if (head_done > deadline) {
            admission->ShedBlocked(arriving.id);
            break;
          }
          AdmissionController::Admitted admitted = admission->Pop();
          replay_status =
              ProcessStreamChunk(&state, admitted.chunk, admitted.degraded);
          if (!replay_status.ok()) break;
          decision = admission->Offer(&arriving, head_done);
        }
        if (!replay_status.ok()) break;
      }
    }
    // End of stream: drain the backlog.
    while (replay_status.ok() && !admission->empty()) {
      AdmissionController::Admitted admitted = admission->Pop();
      replay_status =
          ProcessStreamChunk(&state, admitted.chunk, admitted.degraded);
    }
  }
  active_admission_ = nullptr;
  if (!replay_status.ok()) return replay_status;

  report.final_error = evaluator.CumulativeValue();
  report.average_error =
      state.processed == 0 ? 0.0
                           : state.sum_cumulative_error /
                                 static_cast<double>(state.processed);
  report.total_seconds = cost_.TotalSeconds();
  report.total_work = cost_.TotalWork();
  report.cost = cost_;
  report.storage = data_manager_.store().counters();
  report.empirical_mu = report.storage.EmpiricalMu();
  report.memory_mu = report.storage.MemoryMu();
  report.disk_mu = report.storage.DiskMu();
  report.prefetch_hit_rate = report.storage.PrefetchHitRate();
  report.spill_compression_ratio = report.storage.SpillCompressionRatio();
  report.chunks_spilled = report.storage.chunks_spilled;
  report.disk_loads = report.storage.disk_loads;
  report.prefetch_hits = report.storage.prefetch_hits;
  report.spill_failures = report.storage.spill_failures;
  report.spill_corrupt_detected = report.storage.spill_corrupt_detected;
  report.chunks_processed = static_cast<int64_t>(state.processed);
  report.initial_training_epochs = initial_training_epochs_;
  report.metrics = obs::MetricsSnapshot::Delta(
      metrics_before, obs::MetricsRegistry::Global().Snapshot());
  report.faults_injected = report.metrics.CounterValueOr("fault.injected", 0);
  report.retry_attempts = report.metrics.CounterValueOr("retry.attempts", 0);
  report.retries_exhausted =
      report.metrics.CounterValueOr("retry.exhausted", 0);
  report.degraded_events =
      report.metrics.CounterValueOr("deployment.degraded", 0) +
      report.metrics.CounterValueOr("proactive.chunks_skipped", 0) +
      report.metrics.CounterValueOr("proactive.iterations_degraded", 0);
  report.proactive_chunks_skipped =
      report.metrics.CounterValueOr("proactive.chunks_skipped", 0);
  report.serving_requests = report.metrics.CounterValueOr("serving.requests", 0);
  report.serving_errors = report.metrics.CounterValueOr("serving.errors", 0);
  report.serving_stale_reads =
      report.metrics.CounterValueOr("serving.stale_reads", 0);
  report.snapshot_publishes =
      report.metrics.CounterValueOr("serving.publishes", 0);
  report.serving_eval_fallbacks =
      report.metrics.CounterValueOr("serving.eval_fallbacks", 0);
  report.serving_shed = report.metrics.CounterValueOr("serving.shed", 0);
  report.proactive_deferred =
      report.metrics.CounterValueOr("proactive.iterations_deferred", 0);
  report.publish_skipped_overload = state.publish_skipped_overload;
  report.max_snapshot_staleness_chunks = state.max_staleness_chunks;
  if (admission != nullptr) {
    const AdmissionController::Counters& ingest = admission->counters();
    report.ingest_offered = ingest.offered;
    report.ingest_admitted = ingest.admitted;
    report.ingest_degraded_admits = ingest.degraded_admits;
    report.ingest_shed = ingest.shed;
    report.ingest_shed_oldest = ingest.shed_oldest;
    report.ingest_shed_newest = ingest.shed_newest;
    report.ingest_shed_timeout = ingest.shed_timeout;
    report.ingest_pressure_changes = ingest.pressure_changes;
    report.ingest_peak_queue_depth = ingest.peak_queue_depth;
  }
  FillReport(&report);
  return report;
}

}  // namespace cdpipe
