#ifndef CDPIPE_LINALG_SPARSE_VECTOR_H_
#define CDPIPE_LINALG_SPARSE_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace cdpipe {

class DenseVector;

/// Sorted-coordinate sparse vector.  Indices are strictly increasing
/// uint32_t; a nominal dimension bounds them.  This is the feature
/// representation produced by one-hot encoding and feature hashing, whose
/// O(p) storage guarantee (paper §3.2.1) depends on sparsity.
class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(uint32_t dim) : dim_(dim) {}

  /// Constructs from parallel arrays; indices must be strictly increasing
  /// and < dim.  Returns InvalidArgument otherwise.
  static Result<SparseVector> FromSorted(uint32_t dim,
                                         std::vector<uint32_t> indices,
                                         std::vector<double> values);

  /// Adopts parallel arrays without per-entry re-validation; the caller
  /// guarantees strictly increasing indices < dim.  Fused block kernels use
  /// this for rows whose entries already hold the collapsed VecBlock
  /// invariant (sorted, duplicates summed), where FromSorted's per-entry
  /// checks would re-prove what the kernel just established.  Debug builds
  /// re-assert the invariants.
  static SparseVector FromSortedUnchecked(uint32_t dim,
                                          std::vector<uint32_t> indices,
                                          std::vector<double> values);

  /// Constructs from possibly unsorted (index, value) pairs; duplicate
  /// indices are summed.
  static SparseVector FromUnsorted(
      uint32_t dim, std::vector<std::pair<uint32_t, double>> entries);

  /// Same construction, but through a caller-owned scratch buffer whose
  /// capacity is reused across calls (hot loops build thousands of rows).
  /// `*scratch` is sorted in place and its contents are unspecified after
  /// the call; the produced vector is bit-identical to
  /// `FromUnsorted(dim, *scratch)`.
  static SparseVector FromUnsortedInto(
      uint32_t dim, std::vector<std::pair<uint32_t, double>>* scratch);

  /// The preprocessing FromUnsorted applies before construction, exposed so
  /// fused kernels can collapse entries without materializing a vector:
  /// sorts `*scratch` by index (strictly increasing inputs skip the sort)
  /// and sums duplicate indices in place, left to right, leaving the buffer
  /// strictly sorted.  The summation order is exactly the one
  /// FromUnsortedInto uses, so downstream per-entry transforms see
  /// bit-identical values either way.
  static void SortAndCombineInto(
      std::vector<std::pair<uint32_t, double>>* scratch);

  /// Reserves capacity for `n` entries in both parallel arrays.
  void Reserve(size_t n) {
    indices_.reserve(n);
    values_.reserve(n);
  }

  SparseVector(const SparseVector&) = default;
  SparseVector& operator=(const SparseVector&) = default;
  SparseVector(SparseVector&&) noexcept = default;
  SparseVector& operator=(SparseVector&&) noexcept = default;

  uint32_t dim() const { return dim_; }
  size_t nnz() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  const std::vector<uint32_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  /// Copy of this vector with the nominal dimension rebranded to `new_dim`
  /// after a bounds check (every stored index must be < new_dim; since
  /// indices are sorted only the last one is inspected).  This is the cheap
  /// way to widen mixed-dim chunks: one copy of the already-validated
  /// arrays instead of round-tripping them through FromSorted's per-entry
  /// re-validation.  Returns OutOfRange when shrinking below a stored index.
  Result<SparseVector> WithDim(uint32_t new_dim) const;

  /// Appends an entry with index greater than all current indices.
  /// CHECK-fails on out-of-order or out-of-range appends (programmer error).
  void PushBack(uint32_t index, double value);

  /// Value at `index` (0.0 when absent); O(log nnz).
  double Get(uint32_t index) const;

  /// In-place scale of the stored values.
  void Scale(double alpha);

  /// Applies `f(index, value) -> new_value` to every stored entry.
  template <typename F>
  void TransformValues(F&& f) {
    for (size_t k = 0; k < indices_.size(); ++k) {
      values_[k] = f(indices_[k], values_[k]);
    }
  }

  double Dot(const DenseVector& dense) const;
  double Dot(const SparseVector& other) const;
  double L2NormSquared() const;
  double L2Norm() const;

  /// Converts to a dense vector of dimension dim().
  DenseVector ToDense() const;

  /// Memory footprint in bytes (index + value arrays).
  size_t ByteSize() const {
    return indices_.size() * (sizeof(uint32_t) + sizeof(double));
  }

  std::string ToString(size_t max_elements = 16) const;

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.dim_ == b.dim_ && a.indices_ == b.indices_ &&
           a.values_ == b.values_;
  }

 private:
  uint32_t dim_ = 0;
  std::vector<uint32_t> indices_;
  std::vector<double> values_;
};

}  // namespace cdpipe

#endif  // CDPIPE_LINALG_SPARSE_VECTOR_H_
