#include "src/linalg/dense_vector.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/linalg/sparse_vector.h"

namespace cdpipe {

void DenseVector::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseVector::Axpy(double alpha, const DenseVector& other) {
  CDPIPE_CHECK_EQ(dim(), other.dim());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void DenseVector::Axpy(double alpha, const SparseVector& other) {
  const auto& idx = other.indices();
  const auto& val = other.values();
  for (size_t k = 0; k < idx.size(); ++k) {
    CDPIPE_CHECK_LT(idx[k], data_.size());
    data_[idx[k]] += alpha * val[k];
  }
}

void DenseVector::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

double DenseVector::Dot(const DenseVector& other) const {
  CDPIPE_CHECK_EQ(dim(), other.dim());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    acc += data_[i] * other.data_[i];
  }
  return acc;
}

double DenseVector::Dot(const SparseVector& other) const {
  return other.Dot(*this);
}

double DenseVector::L2NormSquared() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

double DenseVector::L2Norm() const { return std::sqrt(L2NormSquared()); }

double DenseVector::L1Norm() const {
  double acc = 0.0;
  for (double v : data_) acc += std::abs(v);
  return acc;
}

std::string DenseVector::ToString(size_t max_elements) const {
  std::string out = "[";
  const size_t n = std::min(max_elements, data_.size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%g", data_[i]);
  }
  if (n < data_.size()) out += StrFormat(", ... (%zu total)", data_.size());
  out += "]";
  return out;
}

}  // namespace cdpipe
