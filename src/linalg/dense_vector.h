#ifndef CDPIPE_LINALG_DENSE_VECTOR_H_
#define CDPIPE_LINALG_DENSE_VECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cdpipe {

class SparseVector;

/// A contiguous double vector with the handful of BLAS-1 style operations the
/// training loops need.  Kept deliberately small: this library is not a
/// linear-algebra package, it is a deployment platform that happens to train
/// linear models.
class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(size_t dim, double fill = 0.0) : data_(dim, fill) {}
  explicit DenseVector(std::vector<double> values)
      : data_(std::move(values)) {}

  DenseVector(const DenseVector&) = default;
  DenseVector& operator=(const DenseVector&) = default;
  DenseVector(DenseVector&&) noexcept = default;
  DenseVector& operator=(DenseVector&&) noexcept = default;

  size_t dim() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  const std::vector<double>& values() const { return data_; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Grows (zero-filling) or shrinks to `dim`.
  void Resize(size_t dim) { data_.resize(dim, 0.0); }
  void Fill(double v);

  /// this += alpha * other.  Dimensions must match.
  void Axpy(double alpha, const DenseVector& other);
  /// this += alpha * sparse other.  `other`'s indices must be < dim().
  void Axpy(double alpha, const SparseVector& other);

  /// this *= alpha.
  void Scale(double alpha);

  double Dot(const DenseVector& other) const;
  double Dot(const SparseVector& other) const;

  double L2NormSquared() const;
  double L2Norm() const;
  double L1Norm() const;

  /// Memory footprint in bytes (used by the storage accounting).
  size_t ByteSize() const { return data_.size() * sizeof(double); }

  std::string ToString(size_t max_elements = 16) const;

 private:
  std::vector<double> data_;
};

}  // namespace cdpipe

#endif  // CDPIPE_LINALG_DENSE_VECTOR_H_
