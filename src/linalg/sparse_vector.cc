#include "src/linalg/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/linalg/dense_vector.h"

namespace cdpipe {

Result<SparseVector> SparseVector::FromSorted(uint32_t dim,
                                              std::vector<uint32_t> indices,
                                              std::vector<double> values) {
  if (indices.size() != values.size()) {
    return Status::InvalidArgument(
        "indices/values size mismatch: " + std::to_string(indices.size()) +
        " vs " + std::to_string(values.size()));
  }
  for (size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= dim) {
      return Status::OutOfRange("sparse index " + std::to_string(indices[k]) +
                                " >= dim " + std::to_string(dim));
    }
    if (k > 0 && indices[k] <= indices[k - 1]) {
      return Status::InvalidArgument(
          "sparse indices not strictly increasing at position " +
          std::to_string(k));
    }
  }
  SparseVector out(dim);
  out.indices_ = std::move(indices);
  out.values_ = std::move(values);
  return out;
}

SparseVector SparseVector::FromSortedUnchecked(uint32_t dim,
                                               std::vector<uint32_t> indices,
                                               std::vector<double> values) {
#ifndef NDEBUG
  CDPIPE_CHECK_EQ(indices.size(), values.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    CDPIPE_CHECK_LT(indices[k], dim);
    if (k > 0) CDPIPE_CHECK_LT(indices[k - 1], indices[k]);
  }
#endif
  SparseVector out(dim);
  out.indices_ = std::move(indices);
  out.values_ = std::move(values);
  return out;
}

SparseVector SparseVector::FromUnsorted(
    uint32_t dim, std::vector<std::pair<uint32_t, double>> entries) {
  return FromUnsortedInto(dim, &entries);
}

void SparseVector::SortAndCombineInto(
    std::vector<std::pair<uint32_t, double>>* scratch) {
  std::vector<std::pair<uint32_t, double>>& entries = *scratch;
  // Strictly increasing inputs (common: parsers emit index-ordered records)
  // skip the sort.  The fast path requires *strict* order — with duplicate
  // keys an unstable sort may permute them, and duplicate values must be
  // summed in exactly the order std::sort leaves them to stay bit-identical
  // with the non-scratch construction.
  bool strictly_sorted = true;
  for (size_t k = 1; k < entries.size(); ++k) {
    if (entries[k].first <= entries[k - 1].first) {
      strictly_sorted = false;
      break;
    }
  }
  if (strictly_sorted) return;
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Sum duplicates left to right into the first occurrence.
  size_t w = 0;
  for (size_t k = 1; k < entries.size(); ++k) {
    if (entries[k].first == entries[w].first) {
      entries[w].second += entries[k].second;
    } else {
      entries[++w] = entries[k];
    }
  }
  if (!entries.empty()) entries.resize(w + 1);
}

SparseVector SparseVector::FromUnsortedInto(
    uint32_t dim, std::vector<std::pair<uint32_t, double>>* scratch) {
  SortAndCombineInto(scratch);
  const std::vector<std::pair<uint32_t, double>>& entries = *scratch;
  SparseVector out(dim);
  out.indices_.reserve(entries.size());
  out.values_.reserve(entries.size());
  for (const auto& [index, value] : entries) {
    CDPIPE_CHECK_LT(index, dim);
    out.indices_.push_back(index);
    out.values_.push_back(value);
  }
  return out;
}

Result<SparseVector> SparseVector::WithDim(uint32_t new_dim) const {
  if (!indices_.empty() && indices_.back() >= new_dim) {
    return Status::OutOfRange("sparse index " + std::to_string(indices_.back()) +
                              " >= rebranded dim " + std::to_string(new_dim));
  }
  SparseVector out(new_dim);
  out.indices_ = indices_;
  out.values_ = values_;
  return out;
}

void SparseVector::PushBack(uint32_t index, double value) {
  CDPIPE_CHECK_LT(index, dim_);
  CDPIPE_CHECK(indices_.empty() || index > indices_.back())
      << "PushBack index " << index << " not greater than last "
      << (indices_.empty() ? 0 : indices_.back());
  indices_.push_back(index);
  values_.push_back(value);
}

double SparseVector::Get(uint32_t index) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return 0.0;
  return values_[static_cast<size_t>(it - indices_.begin())];
}

void SparseVector::Scale(double alpha) {
  for (double& v : values_) v *= alpha;
}

double SparseVector::Dot(const DenseVector& dense) const {
  double acc = 0.0;
  for (size_t k = 0; k < indices_.size(); ++k) {
    CDPIPE_CHECK_LT(indices_[k], dense.dim());
    acc += values_[k] * dense[indices_[k]];
  }
  return acc;
}

double SparseVector::Dot(const SparseVector& other) const {
  double acc = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < indices_.size() && j < other.indices_.size()) {
    if (indices_[i] < other.indices_[j]) {
      ++i;
    } else if (indices_[i] > other.indices_[j]) {
      ++j;
    } else {
      acc += values_[i] * other.values_[j];
      ++i;
      ++j;
    }
  }
  return acc;
}

double SparseVector::L2NormSquared() const {
  double acc = 0.0;
  for (double v : values_) acc += v * v;
  return acc;
}

double SparseVector::L2Norm() const { return std::sqrt(L2NormSquared()); }

DenseVector SparseVector::ToDense() const {
  DenseVector out(dim_);
  for (size_t k = 0; k < indices_.size(); ++k) {
    out[indices_[k]] = values_[k];
  }
  return out;
}

std::string SparseVector::ToString(size_t max_elements) const {
  std::string out = StrFormat("(dim=%u, nnz=%zu) {", dim_, nnz());
  const size_t n = std::min(max_elements, indices_.size());
  for (size_t k = 0; k < n; ++k) {
    if (k > 0) out += ", ";
    out += StrFormat("%u:%g", indices_[k], values_[k]);
  }
  if (n < indices_.size()) out += ", ...";
  out += "}";
  return out;
}

}  // namespace cdpipe
