#include "src/engine/execution_engine.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

obs::Heartbeat* EngineHeartbeat() {
  static obs::Heartbeat* heartbeat =
      obs::HealthRegistry::Global().GetHeartbeat("engine");
  return heartbeat;
}

}  // namespace

ExecutionEngine::ExecutionEngine(size_t num_threads) {
  if (num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads);
  }
}

ExecutionEngine::~ExecutionEngine() {
  if (async_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(async_->mu);
    async_->stop = true;
  }
  async_->wake.notify_all();
  async_->worker.join();
}

void ExecutionEngine::SubmitAsync(std::function<void()> task) {
  if (async_ == nullptr) {
    async_ = std::make_unique<AsyncLane>();
    async_->worker = std::thread([this] { AsyncWorkerLoop(); });
  }
  {
    std::lock_guard<std::mutex> lock(async_->mu);
    async_->queue.push_back(std::move(task));
  }
  async_->wake.notify_one();
}

void ExecutionEngine::DrainAsync() {
  if (async_ == nullptr) return;
  std::unique_lock<std::mutex> lock(async_->mu);
  async_->drained.wait(lock, [this] {
    return async_->queue.empty() && async_->in_flight == 0;
  });
}

void ExecutionEngine::AsyncWorkerLoop() {
  static obs::Counter* exceptions =
      obs::MetricsRegistry::Global().GetCounter("engine.async_exceptions");
  std::unique_lock<std::mutex> lock(async_->mu);
  while (true) {
    async_->wake.wait(lock, [this] {
      return async_->stop || !async_->queue.empty();
    });
    if (async_->queue.empty()) {
      if (async_->stop) return;
      continue;
    }
    std::function<void()> task = std::move(async_->queue.front());
    async_->queue.pop_front();
    ++async_->in_flight;
    lock.unlock();
    try {
      task();
    } catch (...) {
      // Async tasks are best-effort background work (prefetch); an escaping
      // exception must never take the worker down.  The consumer observes
      // the failure through the task's own deposited state.
      exceptions->Increment();
    }
    lock.lock();
    --async_->in_flight;
    if (async_->queue.empty() && async_->in_flight == 0) {
      async_->drained.notify_all();
    }
  }
}

size_t ExecutionEngine::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

Status ExecutionEngine::RunTask(const std::function<Status(size_t)>& task,
                                size_t index) {
  return RetryWithBackoff(retry_policy_, "engine.task", [&]() -> Status {
    // The work scope sits inside the retry so an injected slow task shows
    // up as a busy-but-silent heartbeat — exactly what the watchdog's stall
    // detector is looking for.
    obs::Heartbeat::WorkScope work(EngineHeartbeat());
    try {
      CDPIPE_FAULT_POINT("engine.task");
      CDPIPE_FAULT_DELAY("engine.slow_task");
      return task(index);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      return Status::Internal("task threw a non-std exception");
    }
  });
}

Status ExecutionEngine::ParallelFor(
    size_t count, const std::function<Status(size_t)>& task) {
  if (pool_ == nullptr) {
    for (size_t i = 0; i < count; ++i) {
      CDPIPE_RETURN_NOT_OK(RunTask(task, i));
    }
    return Status::OK();
  }
  std::mutex mutex;
  Status first_error = Status::OK();
  size_t first_error_index = SIZE_MAX;
  for (size_t i = 0; i < count; ++i) {
    pool_->Submit([&, i] {
      Status st = RunTask(task, i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::move(st);
        }
      }
    });
  }
  pool_->Wait();
  return first_error;
}

Status ExecutionEngine::ParallelForRange(
    size_t count, size_t grain,
    const std::function<Status(size_t, size_t)>& task) {
  if (count == 0) return Status::OK();
  size_t effective_grain = grain;
  if (effective_grain == 0) {
    effective_grain = std::max<size_t>(1, count / (num_threads() * 4));
  }
  effective_grain = std::min(effective_grain, count);
  static obs::Gauge* grain_gauge =
      obs::MetricsRegistry::Global().GetGauge("engine.parallel_range_grain");
  grain_gauge->Set(static_cast<double>(effective_grain));

  // Ranges are not retried (see set_retry_policy): the lambda only guards
  // against injected faults and escaping exceptions.
  const auto run_range = [&task](size_t begin, size_t end) -> Status {
    try {
      CDPIPE_FAULT_POINT("engine.range_task");
      return task(begin, end);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("range task threw: ") + e.what());
    } catch (...) {
      return Status::Internal("range task threw a non-std exception");
    }
  };

  if (pool_ == nullptr) {
    for (size_t begin = 0; begin < count; begin += effective_grain) {
      CDPIPE_RETURN_NOT_OK(
          run_range(begin, std::min(begin + effective_grain, count)));
    }
    return Status::OK();
  }
  std::mutex mutex;
  Status first_error = Status::OK();
  size_t first_error_begin = SIZE_MAX;
  for (size_t begin = 0; begin < count; begin += effective_grain) {
    const size_t end = std::min(begin + effective_grain, count);
    pool_->Submit([&, begin, end] {
      Status st = run_range(begin, end);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        if (begin < first_error_begin) {
          first_error_begin = begin;
          first_error = std::move(st);
        }
      }
    });
  }
  pool_->Wait();
  return first_error;
}

}  // namespace cdpipe
