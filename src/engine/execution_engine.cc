#include "src/engine/execution_engine.h"

#include <atomic>
#include <mutex>

namespace cdpipe {

ExecutionEngine::ExecutionEngine(size_t num_threads) {
  if (num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads);
  }
}

size_t ExecutionEngine::num_threads() const {
  return pool_ != nullptr ? pool_->num_threads() : 1;
}

Status ExecutionEngine::ParallelFor(
    size_t count, const std::function<Status(size_t)>& task) {
  if (pool_ == nullptr) {
    for (size_t i = 0; i < count; ++i) {
      CDPIPE_RETURN_NOT_OK(task(i));
    }
    return Status::OK();
  }
  std::mutex mutex;
  Status first_error = Status::OK();
  size_t first_error_index = SIZE_MAX;
  for (size_t i = 0; i < count; ++i) {
    pool_->Submit([&, i] {
      Status st = task(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mutex);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::move(st);
        }
      }
    });
  }
  pool_->Wait();
  return first_error;
}

}  // namespace cdpipe
