#ifndef CDPIPE_ENGINE_EXECUTION_ENGINE_H_
#define CDPIPE_ENGINE_EXECUTION_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/engine/thread_pool.h"

namespace cdpipe {

/// The paper runs on Apache Spark, which supplies both batch execution
/// (proactive training / retraining over sampled chunks) and streaming
/// execution (per-chunk online processing).  This engine is the from-scratch
/// stand-in: per-chunk work runs inline on the caller's thread (the
/// "streaming" path), and batch fan-out runs on an optional thread pool.
///
/// With `num_threads == 1` everything runs inline on the caller, which keeps
/// experiments bit-for-bit deterministic; >1 parallelizes embarrassingly
/// parallel per-chunk work such as re-materialization.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(size_t num_threads = 1);

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  size_t num_threads() const;

  /// Runs `task(i)` for i in [0, count).  Tasks must be independent; any
  /// returned error aborts with the first (lowest-index) failure.  Order of
  /// side effects across tasks is unspecified when parallel.
  Status ParallelFor(size_t count, const std::function<Status(size_t)>& task);

  /// Blocked-range variant: runs `task(begin, end)` over contiguous blocks
  /// of at most `grain` indices covering [0, count).  One heap-allocated
  /// std::function is submitted per *block*, not per element, which
  /// amortizes the enqueue cost when elements are cheap (per-shard gradient
  /// accumulation, per-row transforms).  `grain == 0` picks a grain that
  /// yields ~4 blocks per worker.  Blocks must be independent; any returned
  /// error aborts with the failure of the lowest `begin`.  Single-threaded
  /// engines run the blocks inline, in order, stopping at the first error.
  Status ParallelForRange(
      size_t count, size_t grain,
      const std::function<Status(size_t, size_t)>& task);

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when single-threaded
};

}  // namespace cdpipe

#endif  // CDPIPE_ENGINE_EXECUTION_ENGINE_H_
