#ifndef CDPIPE_ENGINE_EXECUTION_ENGINE_H_
#define CDPIPE_ENGINE_EXECUTION_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/retry.h"
#include "src/common/status.h"
#include "src/engine/thread_pool.h"

namespace cdpipe {

/// The paper runs on Apache Spark, which supplies both batch execution
/// (proactive training / retraining over sampled chunks) and streaming
/// execution (per-chunk online processing).  This engine is the from-scratch
/// stand-in: per-chunk work runs inline on the caller's thread (the
/// "streaming" path), and batch fan-out runs on an optional thread pool.
///
/// With `num_threads == 1` everything runs inline on the caller, which keeps
/// experiments bit-for-bit deterministic; >1 parallelizes embarrassingly
/// parallel per-chunk work such as re-materialization.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(size_t num_threads = 1);
  /// Joins the async lane (after draining queued work).
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  size_t num_threads() const;

  /// Retry policy applied to every ParallelFor task: a task failing with a
  /// transient status (kUnavailable, kIoError) is re-run in place, with
  /// backoff, before the failure is reported.  ParallelFor tasks must
  /// therefore be idempotent-on-failure (all call sites write into a
  /// per-index slot that is wholly overwritten on success).  Defaults to
  /// RetryPolicy::None().  ParallelForRange tasks are NOT retried — range
  /// callers (sharded gradient accumulation) mutate shared accumulators and
  /// are not failure-idempotent; their callers retry at a higher level.
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Runs `task(i)` for i in [0, count).  Tasks must be independent; any
  /// returned error aborts with the first (lowest-index) failure.  Order of
  /// side effects across tasks is unspecified when parallel.  A task that
  /// throws is converted to a kInternal status instead of terminating the
  /// process.  Fault sites: "engine.task" (error before the task body),
  /// "engine.slow_task" (injected delay).
  Status ParallelFor(size_t count, const std::function<Status(size_t)>& task);

  /// Blocked-range variant: runs `task(begin, end)` over contiguous blocks
  /// of at most `grain` indices covering [0, count).  One heap-allocated
  /// std::function is submitted per *block*, not per element, which
  /// amortizes the enqueue cost when elements are cheap (per-shard gradient
  /// accumulation, per-row transforms).  `grain == 0` picks a grain that
  /// yields ~4 blocks per worker.  Blocks must be independent; any returned
  /// error aborts with the failure of the lowest `begin`.  Single-threaded
  /// engines run the blocks inline, in order, stopping at the first error.
  Status ParallelForRange(
      size_t count, size_t grain,
      const std::function<Status(size_t, size_t)>& task);

  /// Enqueues `task` on the engine's *async lane*: one dedicated FIFO
  /// worker, lazily created on first use and separate from the ParallelFor
  /// pool — background IO (spill prefetch) never competes with training
  /// fan-out or perturbs the "engine.task" fault accounting.  Tasks run in
  /// submission order; an escaping exception is contained and counted
  /// (`engine.async_exceptions` metric), never propagated.  Available on
  /// single-threaded engines too: async overlap does not change what any
  /// task computes, so determinism is preserved.
  void SubmitAsync(std::function<void()> task);

  /// Blocks until every async task submitted so far has finished.  Safe to
  /// call when the lane was never used.
  void DrainAsync();

 private:
  /// One ParallelFor task attempt-with-retries: fault points, exception
  /// conversion, transient-retry loop.
  Status RunTask(const std::function<Status(size_t)>& task, size_t index);

  /// The async lane's worker state (see SubmitAsync).
  struct AsyncLane {
    std::mutex mu;
    std::condition_variable wake;   ///< worker: queue non-empty or stopping
    std::condition_variable drained;  ///< waiters: queue empty + idle
    std::deque<std::function<void()>> queue;
    size_t in_flight = 0;  ///< tasks popped but not yet finished
    bool stop = false;
    std::thread worker;
  };

  void AsyncWorkerLoop();

  std::unique_ptr<ThreadPool> pool_;  // null when single-threaded
  RetryPolicy retry_policy_ = RetryPolicy::None();
  std::unique_ptr<AsyncLane> async_;  // null until first SubmitAsync
};

}  // namespace cdpipe

#endif  // CDPIPE_ENGINE_EXECUTION_ENGINE_H_
