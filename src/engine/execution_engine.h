#ifndef CDPIPE_ENGINE_EXECUTION_ENGINE_H_
#define CDPIPE_ENGINE_EXECUTION_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/engine/thread_pool.h"

namespace cdpipe {

/// The paper runs on Apache Spark, which supplies both batch execution
/// (proactive training / retraining over sampled chunks) and streaming
/// execution (per-chunk online processing).  This engine is the from-scratch
/// stand-in: per-chunk work runs inline on the caller's thread (the
/// "streaming" path), and batch fan-out runs on an optional thread pool.
///
/// With `num_threads == 1` everything runs inline on the caller, which keeps
/// experiments bit-for-bit deterministic; >1 parallelizes embarrassingly
/// parallel per-chunk work such as re-materialization.
class ExecutionEngine {
 public:
  explicit ExecutionEngine(size_t num_threads = 1);

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  size_t num_threads() const;

  /// Runs `task(i)` for i in [0, count).  Tasks must be independent; any
  /// returned error aborts with the first (lowest-index) failure.  Order of
  /// side effects across tasks is unspecified when parallel.
  Status ParallelFor(size_t count, const std::function<Status(size_t)>& task);

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when single-threaded
};

}  // namespace cdpipe

#endif  // CDPIPE_ENGINE_EXECUTION_ENGINE_H_
