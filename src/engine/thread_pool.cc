#include "src/engine/thread_pool.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace {

struct PoolMetrics {
  obs::Counter* tasks_executed;
  obs::Counter* task_exceptions;
  obs::Gauge* queue_depth;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* task_seconds;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      PoolMetrics m;
      m.tasks_executed = registry.GetCounter("thread_pool.tasks_executed");
      m.task_exceptions = registry.GetCounter("thread_pool.task_exceptions");
      m.queue_depth = registry.GetGauge("thread_pool.queue_depth");
      m.queue_wait_seconds =
          registry.GetHistogram("thread_pool.queue_wait_seconds");
      m.task_seconds = registry.GetHistogram("thread_pool.task_seconds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  CDPIPE_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CDPIPE_CHECK(!shutting_down_);
    queue_.push_back({std::move(task), obs::Tracer::NowMicros()});
    ++in_flight_;
    PoolMetrics::Get().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  const PoolMetrics& metrics = PoolMetrics::Get();
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    metrics.queue_wait_seconds->Observe(
        static_cast<double>(obs::Tracer::NowMicros() - task.enqueue_us) *
        1e-6);
    {
      CDPIPE_TRACE_SPAN("thread_pool.task", "engine");
      Stopwatch watch;
      // Last-resort guard: a task that lets an exception escape must not
      // take down the worker thread (and with it the process).  Callers
      // that need the failure reported convert exceptions to Status
      // themselves (ExecutionEngine does); anything reaching this point is
      // logged and counted.
      try {
        task.fn();
      } catch (const std::exception& e) {
        metrics.task_exceptions->Increment();
        CDPIPE_LOG(Error) << "thread-pool task threw: " << e.what();
      } catch (...) {
        metrics.task_exceptions->Increment();
        CDPIPE_LOG(Error) << "thread-pool task threw a non-std exception";
      }
      metrics.task_seconds->Observe(watch.ElapsedSeconds());
    }
    metrics.tasks_executed->Increment();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cdpipe
