#include "src/engine/thread_pool.h"

#include <utility>

#include "src/common/logging.h"

namespace cdpipe {

ThreadPool::ThreadPool(size_t num_threads) {
  CDPIPE_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CDPIPE_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cdpipe
