#ifndef CDPIPE_ENGINE_THREAD_POOL_H_
#define CDPIPE_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cdpipe {

/// A fixed-size worker pool with a simple FIFO queue.  Used by the
/// execution engine to transform sampled chunks in parallel during
/// proactive training and retraining (the stand-in for the paper's Spark
/// executors).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    int64_t enqueue_us = 0;  ///< for the queue-wait latency histogram
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace cdpipe

#endif  // CDPIPE_ENGINE_THREAD_POOL_H_
