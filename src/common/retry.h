#ifndef CDPIPE_COMMON_RETRY_H_
#define CDPIPE_COMMON_RETRY_H_

#include <functional>

#include "src/common/status.h"

namespace cdpipe {

/// Bounded-retry policy with exponential backoff for transient failures
/// (flaky executors, storage hiccups, injected faults).  Backoff is
/// deterministic — no jitter — so runs under fault injection remain
/// reproducible given the fault script.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry; 0 disables sleeping entirely (the
  /// default keeps tests fast — retries in-process rarely need to wait).
  double initial_backoff_seconds = 0.0;
  /// Backoff growth per retry.
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff sleep.
  double max_backoff_seconds = 1.0;

  /// A policy that runs the operation exactly once.
  static RetryPolicy None() {
    RetryPolicy policy;
    policy.max_attempts = 1;
    return policy;
  }
};

/// Whether a failure is worth retrying: transient codes only.  Logic errors
/// (InvalidArgument, NotFound, FailedPrecondition, ...) fail fast.
bool IsRetryable(const Status& status);

/// Runs `op`; on a retryable failure sleeps the (bounded, exponential)
/// backoff and re-runs it, up to `policy.max_attempts` total attempts.
/// Non-retryable errors return immediately without consuming attempts.
///
/// `op` must be idempotent-on-failure: a failed attempt must leave no
/// partial state behind (the call sites in this codebase either write into
/// a slot that is wholly overwritten on success, or fail before mutating).
///
/// Metrics: every re-execution increments `retry.attempts`; an operation
/// that still fails after the final attempt increments `retry.exhausted`.
/// `op_name` labels the retry-warning log lines.
Status RetryWithBackoff(const RetryPolicy& policy, const char* op_name,
                        const std::function<Status()>& op);

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_RETRY_H_
