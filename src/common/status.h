#ifndef CDPIPE_COMMON_STATUS_H_
#define CDPIPE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cdpipe {

/// Error categories used across the library.  Modeled after the
/// Arrow/RocksDB status idiom: library code never throws; fallible
/// operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kIoError,
  kInternal,
  /// Transient failure (flaky executor, temporary resource pressure):
  /// retrying the same operation may succeed.  The retry layer
  /// (src/common/retry.h) treats this code and kIoError as retryable.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message describing what went wrong and (by convention) which argument or
/// state caused it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// A value-or-status holder, the return type of fallible factories and
/// accessors.  `ValueOrDie()` aborts on error and is intended for tests and
/// examples; production call-sites should check `ok()` first.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success path reads naturally:
  /// `return some_value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or aborts with the status message.
  T ValueOrDie() &&;

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnError(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnError(status_);
  return std::move(*value_);
}

/// Propagates a non-OK status to the caller.
#define CDPIPE_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::cdpipe::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (false)

#define CDPIPE_CONCAT_IMPL(a, b) a##b
#define CDPIPE_CONCAT(a, b) CDPIPE_CONCAT_IMPL(a, b)

/// Assigns the value of a `Result<T>` expression to `lhs`, propagating
/// errors: `CDPIPE_ASSIGN_OR_RETURN(auto v, MakeV());`
#define CDPIPE_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  auto CDPIPE_CONCAT(_result_, __LINE__) = (rexpr);                   \
  if (!CDPIPE_CONCAT(_result_, __LINE__).ok())                        \
    return CDPIPE_CONCAT(_result_, __LINE__).status();                \
  lhs = std::move(CDPIPE_CONCAT(_result_, __LINE__)).value()

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_STATUS_H_
