#include "src/common/stopwatch.h"

// Header-only for now; this translation unit anchors the target so the
// library always has at least one symbol per module.

namespace cdpipe {}  // namespace cdpipe
