#ifndef CDPIPE_COMMON_RNG_H_
#define CDPIPE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdpipe {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64).  All randomness in the library flows through explicitly
/// seeded `Rng` instances so every experiment is reproducible from a single
/// `--seed` flag.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached spare deviate).
  double NextGaussian();

  /// Gaussian with given mean and stddev.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

  /// Exponential with given rate (lambda > 0).
  double NextExponential(double rate);

  /// Poisson-distributed count (Knuth for small mean, normal approximation
  /// for large mean).
  int64_t NextPoisson(double mean);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Fisher-Yates shuffle in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) uniformly without replacement.
  /// Returns fewer than k indices when k > n.  O(n) via reservoir when k is
  /// large relative to n, O(k) rejection otherwise.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-worker streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_RNG_H_
