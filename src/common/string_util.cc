#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace cdpipe {

std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter) {
  std::vector<std::string_view> out;
  SplitStringInto(input, delimiter, &out);
  return out;
}

void SplitStringInto(std::string_view input, char delimiter,
                     std::vector<std::string_view>* out) {
  out->clear();
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out->push_back(input.substr(start));
      break;
    }
    out->push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool ParseDoubleFast(std::string_view input, double* out) {
  input = StripWhitespace(input);
  // std::from_chars rejects an explicit '+' sign; accept it here ("+1" is
  // the canonical positive label in libsvm files).
  if (!input.empty() && input[0] == '+') input.remove_prefix(1);
  if (input.empty()) return false;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseInt64Fast(std::string_view input, int64_t* out) {
  input = StripWhitespace(input);
  if (!input.empty() && input[0] == '+') input.remove_prefix(1);
  if (input.empty()) return false;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

Result<double> ParseDouble(std::string_view input) {
  input = StripWhitespace(input);
  if (!input.empty() && input[0] == '+') input.remove_prefix(1);
  if (input.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  double value = 0.0;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not a double: '" + std::string(input) +
                                   "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view input) {
  input = StripWhitespace(input);
  if (!input.empty() && input[0] == '+') input.remove_prefix(1);
  if (input.empty()) {
    return Status::InvalidArgument("empty string is not an int64");
  }
  int64_t value = 0;
  const char* begin = input.data();
  const char* end = begin + input.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not an int64: '" + std::string(input) +
                                   "'");
  }
  return value;
}

namespace {

bool IsLeapYear(int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

// Days from 1970-01-01 to year-month-day (civil calendar), from Howard
// Hinnant's algorithms.
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, int64_t* m, int64_t* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

}  // namespace

Result<int64_t> ParseDateTime(std::string_view input) {
  input = StripWhitespace(input);
  // Expected: "YYYY-MM-DD hh:mm:ss" (19 chars).
  if (input.size() != 19 || input[4] != '-' || input[7] != '-' ||
      input[10] != ' ' || input[13] != ':' || input[16] != ':') {
    return Status::InvalidArgument("not a datetime: '" + std::string(input) +
                                   "'");
  }
  auto field = [&](size_t pos, size_t len) -> Result<int64_t> {
    return ParseInt64(input.substr(pos, len));
  };
  CDPIPE_ASSIGN_OR_RETURN(int64_t year, field(0, 4));
  CDPIPE_ASSIGN_OR_RETURN(int64_t month, field(5, 2));
  CDPIPE_ASSIGN_OR_RETURN(int64_t day, field(8, 2));
  CDPIPE_ASSIGN_OR_RETURN(int64_t hour, field(11, 2));
  CDPIPE_ASSIGN_OR_RETURN(int64_t minute, field(14, 2));
  CDPIPE_ASSIGN_OR_RETURN(int64_t second, field(17, 2));
  static constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12 || day < 1 || hour > 23 || minute > 59 ||
      second > 59 || hour < 0 || minute < 0 || second < 0) {
    return Status::InvalidArgument("datetime field out of range: '" +
                                   std::string(input) + "'");
  }
  int64_t dim = kDaysInMonth[month - 1];
  if (month == 2 && IsLeapYear(year)) dim = 29;
  if (day > dim) {
    return Status::InvalidArgument("day out of range: '" + std::string(input) +
                                   "'");
  }
  return DaysFromCivil(year, month, day) * 86400 + hour * 3600 + minute * 60 +
         second;
}

bool ParseDateTimeFast(std::string_view input, int64_t* out) {
  input = StripWhitespace(input);
  if (input.size() != 19 || input[4] != '-' || input[7] != '-' ||
      input[10] != ' ' || input[13] != ':' || input[16] != ':') {
    return false;
  }
  bool all_digits = true;
  auto field = [&](size_t pos, size_t len) -> int64_t {
    int64_t acc = 0;
    for (size_t i = 0; i < len; ++i) {
      const char c = input[pos + i];
      if (c < '0' || c > '9') {
        all_digits = false;
        return 0;
      }
      acc = acc * 10 + (c - '0');
    }
    return acc;
  };
  const int64_t year = field(0, 4);
  const int64_t month = field(5, 2);
  const int64_t day = field(8, 2);
  const int64_t hour = field(11, 2);
  const int64_t minute = field(14, 2);
  const int64_t second = field(17, 2);
  if (!all_digits) {
    // Fields with signs or whitespace that ParseInt64 would accept: defer
    // to the slow path so both variants accept the same grammar.
    Result<int64_t> slow = ParseDateTime(input);
    if (!slow.ok()) return false;
    *out = *slow;
    return true;
  }
  static constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12 || day < 1 || hour > 23 || minute > 59 ||
      second > 59) {
    return false;
  }
  int64_t dim = kDaysInMonth[month - 1];
  if (month == 2 && IsLeapYear(year)) dim = 29;
  if (day > dim) return false;
  *out = DaysFromCivil(year, month, day) * 86400 + hour * 3600 + minute * 60 +
         second;
  return true;
}

std::string FormatDateTime(int64_t unix_seconds) {
  int64_t days = unix_seconds / 86400;
  int64_t rem = unix_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int64_t y = 0;
  int64_t m = 0;
  int64_t d = 0;
  CivilFromDays(days, &y, &m, &d);
  return StrFormat("%04lld-%02lld-%02lld %02lld:%02lld:%02lld",
                   static_cast<long long>(y), static_cast<long long>(m),
                   static_cast<long long>(d),
                   static_cast<long long>(rem / 3600),
                   static_cast<long long>((rem / 60) % 60),
                   static_cast<long long>(rem % 60));
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace cdpipe
