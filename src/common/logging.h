#ifndef CDPIPE_COMMON_LOGGING_H_
#define CDPIPE_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cdpipe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.  Defaults to
/// kWarning so library internals stay quiet in tests and benchmarks.  The
/// default can be overridden at startup with the CDPIPE_LOG_LEVEL
/// environment variable ("debug"|"info"|"warning"|"error", or 0-3); an
/// explicit SetLogLevel always wins over the environment.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a log level name ("debug", "info", "warn"/"warning", "error",
/// case-insensitive, or a numeric 0-3).  Unrecognized values return
/// `fallback`.
LogLevel ParseLogLevelOrDefault(const std::string& value, LogLevel fallback);

namespace internal {

/// Stream-style log sink: `LogMessage(kInfo, __FILE__, __LINE__) << ...`.
/// The destructor flushes the accumulated line to stderr if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Log sink that aborts the process after flushing; used by CHECK failures.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define CDPIPE_LOG(level)                                                  \
  ::cdpipe::internal::LogMessage(::cdpipe::LogLevel::k##level, __FILE__, \
                                 __LINE__)

/// Invariant check for programmer errors (not data errors — those use
/// Status).  Always on, including release builds: a violated invariant in a
/// storage or training loop must not silently corrupt results.
#define CDPIPE_CHECK(cond)                                              \
  if (cond) {                                                           \
  } else /* NOLINT */                                                   \
    ::cdpipe::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define CDPIPE_CHECK_EQ(a, b) CDPIPE_CHECK((a) == (b))
#define CDPIPE_CHECK_NE(a, b) CDPIPE_CHECK((a) != (b))
#define CDPIPE_CHECK_LT(a, b) CDPIPE_CHECK((a) < (b))
#define CDPIPE_CHECK_LE(a, b) CDPIPE_CHECK((a) <= (b))
#define CDPIPE_CHECK_GT(a, b) CDPIPE_CHECK((a) > (b))
#define CDPIPE_CHECK_GE(a, b) CDPIPE_CHECK((a) >= (b))

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_LOGGING_H_
