#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace cdpipe {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

int InitialLogLevel() {
  const char* env = std::getenv("CDPIPE_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return static_cast<int>(LogLevel::kWarning);
  }
  return static_cast<int>(ParseLogLevelOrDefault(env, LogLevel::kWarning));
}

/// The threshold lives behind a function so the environment override is
/// applied exactly once, on first use, regardless of static-init order.
std::atomic<int>& LogLevelVar() {
  static std::atomic<int> level{InitialLogLevel()};
  return level;
}

/// Small sequential ids ("t0", "t1", ...) read better in interleaved logs
/// than the opaque values std::thread::id prints.
int ThisThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Wall-clock timestamp "YYYY-MM-DD HH:MM:SS.mmm" (UTC).
void AppendTimestamp(std::ostringstream& stream) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02d %02d:%02d:%02d.%03d", tm_utc.tm_year + 1900,
                tm_utc.tm_mon + 1, tm_utc.tm_mday, tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, static_cast<int>(millis));
  stream << buffer;
}

}  // namespace

LogLevel ParseLogLevelOrDefault(const std::string& value, LogLevel fallback) {
  std::string lower;
  lower.reserve(value.size());
  for (char c : value) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

void SetLogLevel(LogLevel level) {
  LogLevelVar().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(
      LogLevelVar().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               LogLevelVar().load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[";
    AppendTimestamp(stream_);
    stream_ << " " << LevelName(level_) << " t" << ThisThreadId() << " "
            << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[";
  AppendTimestamp(stream_);
  stream_ << " FATAL t" << ThisThreadId() << " " << file << ":" << line
          << "] check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace cdpipe
