#ifndef CDPIPE_COMMON_STOPWATCH_H_
#define CDPIPE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cdpipe {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  int64_t ElapsedMicros() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A manually advanced clock used by the scheduler and deployment simulation:
/// the platform processes a historical stream, so "now" is the timestamp of
/// the data being replayed, not the machine time.
class ManualClock {
 public:
  explicit ManualClock(double start_seconds = 0.0) : now_(start_seconds) {}

  double NowSeconds() const { return now_; }
  void AdvanceSeconds(double dt) { now_ += dt; }
  void SetSeconds(double t) { now_ = t; }

 private:
  double now_;
};

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_STOPWATCH_H_
