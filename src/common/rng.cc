#include "src/common/rng.h"

#include <cmath>
#include <unordered_set>

#include "src/common/logging.h"

namespace cdpipe {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CDPIPE_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless bounded generation.
  __uint128_t m = static_cast<__uint128_t>(NextUint64()) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      m = static_cast<__uint128_t>(NextUint64()) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextExponential(double rate) {
  CDPIPE_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int64_t Rng::NextPoisson(double mean) {
  CDPIPE_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's algorithm.
    const double l = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation at large means.
  const double x = NextGaussian(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<int64_t>(x + 0.5);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CDPIPE_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  if (k > n / 3) {
    // Selection sampling (Knuth algorithm S): one pass, O(n).
    std::vector<size_t> out;
    out.reserve(k);
    size_t remaining = k;
    for (size_t i = 0; i < n && remaining > 0; ++i) {
      if (NextBounded(n - i) < remaining) {
        out.push_back(i);
        --remaining;
      }
    }
    return out;
  }
  // Rejection sampling, O(k) expected.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace cdpipe
