#ifndef CDPIPE_COMMON_STRING_UTIL_H_
#define CDPIPE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace cdpipe {

/// Splits `input` on `delimiter`, keeping empty fields (CSV semantics).
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter);

/// Allocation-free variant for hot loops: clears and refills `*out`,
/// reusing its capacity across calls.
void SplitStringInto(std::string_view input, char delimiter,
                     std::vector<std::string_view>* out);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Locale-independent numeric parsing.
Result<double> ParseDouble(std::string_view input);
Result<int64_t> ParseInt64(std::string_view input);

/// Error-message-free variants for hot parse loops.  They accept exactly
/// the same grammar and produce bit-identical values (same `from_chars`
/// conversion), but report failure via the return value instead of
/// building an error Status — parsers that drop malformed records per row
/// should not pay for an allocation per cell.
bool ParseDoubleFast(std::string_view input, double* out);
bool ParseInt64Fast(std::string_view input, int64_t* out);

/// Parses "YYYY-MM-DD hh:mm:ss" into seconds since 1970-01-01 00:00:00 UTC
/// (proleptic Gregorian, no leap seconds).  This is the format of NYC taxi
/// trip records.
Result<int64_t> ParseDateTime(std::string_view input);

/// Fast variant of ParseDateTime: same accepted grammar and identical
/// result, failure as a bool (see ParseDoubleFast).
bool ParseDateTimeFast(std::string_view input, int64_t* out);

/// Inverse of ParseDateTime.
std::string FormatDateTime(int64_t unix_seconds);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// FNV-1a over `bytes` (64-bit offset basis / prime).  The integrity hash
/// used by checkpoint trailers, spill-file trailers, and the fusion plan
/// cache's schema fingerprints.
uint64_t Fnv1a64(std::string_view bytes);

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_STRING_UTIL_H_
