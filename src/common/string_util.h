#ifndef CDPIPE_COMMON_STRING_UTIL_H_
#define CDPIPE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace cdpipe {

/// Splits `input` on `delimiter`, keeping empty fields (CSV semantics).
std::vector<std::string_view> SplitString(std::string_view input,
                                          char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// Locale-independent numeric parsing.
Result<double> ParseDouble(std::string_view input);
Result<int64_t> ParseInt64(std::string_view input);

/// Parses "YYYY-MM-DD hh:mm:ss" into seconds since 1970-01-01 00:00:00 UTC
/// (proleptic Gregorian, no leap seconds).  This is the format of NYC taxi
/// trip records.
Result<int64_t> ParseDateTime(std::string_view input);

/// Inverse of ParseDateTime.
std::string FormatDateTime(int64_t unix_seconds);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cdpipe

#endif  // CDPIPE_COMMON_STRING_UTIL_H_
