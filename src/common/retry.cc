#include "src/common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/logging.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace {

struct RetryMetrics {
  obs::Counter* attempts;
  obs::Counter* exhausted;

  static const RetryMetrics& Get() {
    static const RetryMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      RetryMetrics m;
      m.attempts = registry.GetCounter("retry.attempts");
      m.exhausted = registry.GetCounter("retry.exhausted");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

Status RetryWithBackoff(const RetryPolicy& policy, const char* op_name,
                        const std::function<Status()>& op) {
  const int max_attempts = std::max(1, policy.max_attempts);
  double backoff = policy.initial_backoff_seconds;
  Status status;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    status = op();
    if (status.ok() || !IsRetryable(status)) return status;
    if (attempt == max_attempts) break;
    CDPIPE_LOG(Warning) << op_name << " attempt " << attempt << "/"
                        << max_attempts << " failed transiently ("
                        << status.ToString() << "), retrying";
    RetryMetrics::Get().attempts->Increment();
    obs::EventJournal::Global().Append(obs::EventKind::kRetry, op_name);
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(backoff, policy.max_backoff_seconds)));
      // Clamp the growth at the sleep cap: with large attempt counts an
      // unbounded multiply overflows to inf (and the next std::min would
      // still save the sleep, but the policy state itself goes non-finite).
      backoff = std::min(backoff * policy.backoff_multiplier,
                         policy.max_backoff_seconds);
    }
  }
  RetryMetrics::Get().exhausted->Increment();
  CDPIPE_LOG(Error) << op_name << " failed after " << max_attempts
                    << " attempts: " << status.ToString();
  return status;
}

}  // namespace cdpipe
