#ifndef CDPIPE_ML_LINEAR_MODEL_H_
#define CDPIPE_ML_LINEAR_MODEL_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/io/serialization.h"
#include "src/linalg/dense_vector.h"
#include "src/linalg/sparse_vector.h"
#include "src/ml/batch_view.h"
#include "src/ml/loss.h"
#include "src/ml/optimizer.h"

namespace cdpipe {

class ExecutionEngine;

/// A generalized linear model trained with mini-batch SGD: linear SVM
/// (hinge loss), logistic regression, or least-squares linear regression,
/// with L2 regularization.
///
/// The paper's deployment platform (§4.4) requires the model to expose an
/// `Update` method that computes a gradient over a mini-batch and applies it
/// through the optimizer; this is the unit of work of both online learning
/// and proactive training, so one class serves every deployment strategy.
///
/// The weight vector grows on demand: feature dimensions may appear over
/// the lifetime of a deployment (e.g. growing one-hot dictionaries).
class LinearModel {
 public:
  struct Options {
    LossKind loss = LossKind::kSquared;
    /// L2 regularization strength λ.  Applied lazily: the λ·w term is added
    /// only for the coordinates touched by the mini-batch (the standard
    /// sparse-SGD treatment; exact for dense data).
    double l2_reg = 0.0;
    bool fit_bias = true;
    /// Initialize the bias to the label mean of the first training batch
    /// (the standard base-score trick for regression: optimizers then only
    /// learn residuals instead of marching the intercept across the whole
    /// label range).
    bool init_bias_to_label_mean = false;
    /// Initial weight dimension (may grow).
    uint32_t initial_dim = 0;
  };

  explicit LinearModel(Options options);

  LinearModel(const LinearModel&) = default;
  LinearModel& operator=(const LinearModel&) = default;

  const Options& options() const { return options_; }

  /// Raw score w·x + b (margin for classifiers, prediction for regression).
  double Predict(const SparseVector& x) const;

  /// Batch scoring: `out` is overwritten with one Predict score per row of
  /// `features`, in row order (bit-identical to calling Predict per row).
  /// The micro-batch unit of the serving tier.
  void PredictBatch(const FeatureData& features, std::vector<double>* out) const;

  /// Classification label in {-1, +1} from the sign of the raw score.
  double PredictLabel(const SparseVector& x) const {
    return Predict(x) >= 0.0 ? 1.0 : -1.0;
  }

  /// One mini-batch SGD iteration: computes the averaged, L2-regularized
  /// gradient over `batch` and applies it through `optimizer`.  Empty
  /// batches are a no-op.  Delegates to the BatchView overload (one row
  /// reference per example, no data copies, same numerics).
  Status Update(const FeatureData& batch, Optimizer* optimizer);

  /// Zero-copy mini-batch SGD iteration over borrowed rows.  When `engine`
  /// is non-null and multi-threaded, the gradient accumulation is sharded
  /// across its workers; the result is bit-identical to the serial path
  /// (see ComputeGradient).
  Status Update(const BatchView& batch, Optimizer* optimizer,
                ExecutionEngine* engine = nullptr);

  /// Computes the averaged regularized gradient over `batch` without
  /// applying it (used by tests and by distributed-style partial-gradient
  /// aggregation).  Output entries are sorted by index.
  Status ComputeGradient(const FeatureData& batch, std::vector<GradEntry>* grad,
                         double* bias_grad) const;

  /// Sharded zero-copy gradient.  Rows are partitioned into shards whose
  /// count depends only on the row count — never on `engine` or its thread
  /// count — and per-shard partial sums are merged in fixed shard order, so
  /// the floating-point result is deterministic and identical whether the
  /// shards run serially (engine == nullptr) or on any number of workers.
  Status ComputeGradient(const BatchView& batch, std::vector<GradEntry>* grad,
                         double* bias_grad,
                         ExecutionEngine* engine = nullptr) const;

  /// Applies an externally computed gradient through `optimizer`.
  void ApplyGradient(const std::vector<GradEntry>& grad, double bias_grad,
                     Optimizer* optimizer);

  /// Mean unregularized loss over `batch`.
  Result<double> AverageLoss(const FeatureData& batch) const;

  uint32_t dim() const { return static_cast<uint32_t>(weights_.dim()); }
  const DenseVector& weights() const { return weights_; }
  DenseVector* mutable_weights() { return &weights_; }
  double bias() const { return bias_; }
  void set_bias(double b) { bias_ = b; }

  /// Grows the weight vector (zero-filled) to at least `dim`.
  void EnsureDim(uint32_t dim);

  std::string ToString() const;

  /// Checkpointing: persists / restores weights, bias, and the options that
  /// affect training semantics.  Loading verifies the loss kind matches.
  Status SaveState(Serializer* out) const;
  Status LoadState(Deserializer* in);

 private:
  Options options_;
  DenseVector weights_;
  double bias_ = 0.0;
  bool bias_initialized_ = false;
};

}  // namespace cdpipe

#endif  // CDPIPE_ML_LINEAR_MODEL_H_
