#include "src/ml/batch_view.h"

#include <algorithm>

namespace cdpipe {

Result<std::vector<BatchView::RowRef>> BatchView::CollectRows(
    const std::vector<const FeatureData*>& chunks, uint32_t* max_dim) {
  uint32_t dim = 0;
  size_t total_rows = 0;
  for (const FeatureData* chunk : chunks) {
    if (chunk == nullptr) {
      return Status::InvalidArgument("null feature chunk in batch view");
    }
    CDPIPE_RETURN_NOT_OK(chunk->Validate());
    dim = std::max(dim, chunk->dim);
    total_rows += chunk->num_rows();
  }
  std::vector<RowRef> rows;
  rows.reserve(total_rows);
  for (const FeatureData* chunk : chunks) {
    for (uint32_t r = 0; r < chunk->num_rows(); ++r) {
      rows.push_back(RowRef{chunk, r});
    }
  }
  if (max_dim != nullptr) *max_dim = dim;
  return rows;
}

}  // namespace cdpipe
