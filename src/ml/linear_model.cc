#include "src/ml/linear_model.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/engine/execution_engine.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace {

/// Rows per gradient shard / maximum shard fan-out.  The shard count is a
/// function of the row count ONLY (never the worker count): per-shard
/// partials are merged in ascending shard order, which pins the
/// floating-point summation order regardless of how many threads execute
/// the shards — serial and parallel runs produce bit-identical gradients.
constexpr size_t kMinRowsPerGradShard = 256;
constexpr size_t kMaxGradShards = 64;

size_t NumGradShards(size_t rows) {
  return std::clamp(rows / kMinRowsPerGradShard, size_t{1}, kMaxGradShards);
}

/// Dense-scratch sparse accumulator: O(1) adds into a dense value array
/// with a touched-index list, replacing the hash-map + final sort of the
/// previous implementation.  "Touched" tracks every coordinate present in
/// the batch even when its partial sum is 0.0 (zero-loss rows), because the
/// lazy L2 term applies to all touched coordinates.
///
/// Scratch instances are reused across mini-batches (one per thread, see
/// Scratch()): Reset clears only the coordinates the previous batch
/// touched, so steady-state cost is O(touched) per batch instead of an
/// O(dim) allocation + zero-fill.
class GradAccumulator {
 public:
  GradAccumulator() = default;

  /// Clears previous contents (sparsely) and grows scratch to `dim`.
  void Reset(uint32_t dim) {
    for (uint32_t index : touched_) {
      sums_[index] = 0.0;
      touched_flag_[index] = 0;
    }
    touched_.clear();
    if (sums_.size() < dim) {
      sums_.resize(dim, 0.0);
      touched_flag_.resize(dim, 0);
    }
  }

  void Add(uint32_t index, double value) {
    if (!touched_flag_[index]) {
      touched_flag_[index] = 1;
      touched_.push_back(index);
    }
    sums_[index] += value;
  }

  /// Touched (index, partial-sum) entries sorted by index.  When the batch
  /// touched a large fraction of `dim`, an ordered scan of the flag array
  /// beats the O(t log t) sort; both emit the identical entry sequence.
  std::vector<GradEntry> ExtractSorted(uint32_t dim) {
    std::vector<GradEntry> out;
    out.reserve(touched_.size());
    if (touched_.size() >= dim / 8) {
      for (uint32_t index = 0; index < dim; ++index) {
        if (touched_flag_[index]) out.push_back(GradEntry{index, sums_[index]});
      }
    } else {
      std::sort(touched_.begin(), touched_.end());
      for (uint32_t index : touched_) {
        out.push_back(GradEntry{index, sums_[index]});
      }
    }
    return out;
  }

  /// Per-thread reusable scratch, reset to `dim` and empty.  Callers must
  /// finish with one scratch (ExtractSorted) before acquiring it again on
  /// the same thread.
  static GradAccumulator& Scratch(uint32_t dim) {
    thread_local GradAccumulator scratch;
    scratch.Reset(dim);
    return scratch;
  }

 private:
  std::vector<double> sums_;
  std::vector<uint8_t> touched_flag_;
  std::vector<uint32_t> touched_;
};

struct GradShard {
  std::vector<GradEntry> entries;  ///< sorted partial sums
  double bias_sum = 0.0;
};

struct ModelMetrics {
  obs::Gauge* grad_shard_count;
  obs::Histogram* grad_merge_seconds;

  static const ModelMetrics& Get() {
    static const ModelMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      ModelMetrics m;
      m.grad_shard_count = registry.GetGauge("model.grad_shard_count");
      m.grad_merge_seconds =
          registry.GetHistogram("model.grad_merge_seconds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

LinearModel::LinearModel(Options options)
    : options_(options), weights_(options.initial_dim) {}

double LinearModel::Predict(const SparseVector& x) const {
  // Dimensions beyond the current weight vector have zero weight; guard so
  // prediction works before EnsureDim has seen the widest batch.
  double score = options_.fit_bias ? bias_ : 0.0;
  const auto& idx = x.indices();
  const auto& val = x.values();
  const size_t dim = weights_.dim();
  for (size_t k = 0; k < idx.size(); ++k) {
    if (idx[k] < dim) score += val[k] * weights_[idx[k]];
  }
  return score;
}

void LinearModel::PredictBatch(const FeatureData& features,
                               std::vector<double>* out) const {
  out->clear();
  out->reserve(features.features.size());
  for (const SparseVector& row : features.features) {
    out->push_back(Predict(row));
  }
}

void LinearModel::EnsureDim(uint32_t dim) {
  if (dim > weights_.dim()) weights_.Resize(dim);
}

Status LinearModel::ComputeGradient(const FeatureData& batch,
                                    std::vector<GradEntry>* grad,
                                    double* bias_grad) const {
  grad->clear();
  *bias_grad = 0.0;
  if (batch.num_rows() == 0) return Status::OK();
  CDPIPE_RETURN_NOT_OK(batch.Validate());
  std::vector<BatchView::RowRef> rows;
  rows.reserve(batch.num_rows());
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    rows.push_back(BatchView::RowRef{&batch, r});
  }
  return ComputeGradient(BatchView(batch.dim, rows), grad, bias_grad);
}

Status LinearModel::ComputeGradient(const BatchView& batch,
                                    std::vector<GradEntry>* grad,
                                    double* bias_grad,
                                    ExecutionEngine* engine) const {
  grad->clear();
  *bias_grad = 0.0;
  const size_t rows = batch.num_rows();
  if (rows == 0) return Status::OK();
  if (batch.dim() > weights_.dim()) {
    return Status::FailedPrecondition(
        "batch dim " + std::to_string(batch.dim()) + " exceeds model dim " +
        std::to_string(weights_.dim()) + "; call EnsureDim first");
  }

  const size_t num_shards = NumGradShards(rows);
  const size_t shard_rows = (rows + num_shards - 1) / num_shards;
  std::vector<GradShard> shards(num_shards);
  auto run_shard = [&](size_t s) {
    const size_t begin = s * shard_rows;
    const size_t end = std::min(begin + shard_rows, rows);
    GradAccumulator& accum = GradAccumulator::Scratch(batch.dim());
    double bias_sum = 0.0;
    for (size_t r = begin; r < end; ++r) {
      const SparseVector& x = batch.feature(r);
      const LossGrad lg = EvalLoss(options_.loss, Predict(x), batch.label(r));
      const auto& idx = x.indices();
      const auto& val = x.values();
      for (size_t k = 0; k < idx.size(); ++k) {
        // Zero-loss examples still *touch* their coordinates so the lazy L2
        // term below applies to every coordinate present in the mini-batch.
        accum.Add(idx[k], lg.dloss_dpred * val[k]);
      }
      bias_sum += lg.dloss_dpred;
    }
    shards[s].entries = accum.ExtractSorted(batch.dim());
    shards[s].bias_sum = bias_sum;
  };
  if (engine != nullptr && engine->num_threads() > 1 && num_shards > 1) {
    CDPIPE_RETURN_NOT_OK(engine->ParallelForRange(
        num_shards, /*grain=*/0, [&](size_t begin, size_t end) -> Status {
          for (size_t s = begin; s < end; ++s) run_shard(s);
          return Status::OK();
        }));
  } else {
    for (size_t s = 0; s < num_shards; ++s) run_shard(s);
  }
  const ModelMetrics& metrics = ModelMetrics::Get();
  metrics.grad_shard_count->Set(static_cast<double>(num_shards));

  // Deterministic merge: per-coordinate partials are summed in ascending
  // shard order, so the result does not depend on execution interleaving.
  // A single shard needs no merge pass (re-adding into zeroed scratch is
  // the identity), so its entries are taken as-is — same values bit for
  // bit.
  Stopwatch merge_watch;
  std::vector<GradEntry> merged_entries;
  double bias_accum = 0.0;
  if (num_shards == 1) {
    merged_entries = std::move(shards[0].entries);
    bias_accum = shards[0].bias_sum;
  } else {
    GradAccumulator& merged = GradAccumulator::Scratch(batch.dim());
    for (const GradShard& shard : shards) {
      for (const GradEntry& entry : shard.entries) {
        merged.Add(entry.index, entry.value);
      }
      bias_accum += shard.bias_sum;
    }
    merged_entries = merged.ExtractSorted(batch.dim());
  }
  const double inv_n = 1.0 / static_cast<double>(rows);
  grad->reserve(merged_entries.size());
  for (const GradEntry& entry : merged_entries) {
    double value = entry.value * inv_n;
    if (options_.l2_reg > 0.0) value += options_.l2_reg * weights_[entry.index];
    if (value != 0.0) grad->push_back(GradEntry{entry.index, value});
  }
  *bias_grad = options_.fit_bias ? bias_accum * inv_n : 0.0;
  metrics.grad_merge_seconds->Observe(merge_watch.ElapsedSeconds());
  return Status::OK();
}

void LinearModel::ApplyGradient(const std::vector<GradEntry>& grad,
                                double bias_grad, Optimizer* optimizer) {
  CDPIPE_CHECK(optimizer != nullptr);
  optimizer->Step(grad, options_.fit_bias ? bias_grad : 0.0, &weights_,
                  &bias_);
  if (!options_.fit_bias) bias_ = 0.0;
}

Status LinearModel::Update(const FeatureData& batch, Optimizer* optimizer) {
  if (batch.num_rows() == 0) return Status::OK();
  CDPIPE_RETURN_NOT_OK(batch.Validate());
  std::vector<BatchView::RowRef> rows;
  rows.reserve(batch.num_rows());
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    rows.push_back(BatchView::RowRef{&batch, r});
  }
  return Update(BatchView(batch.dim, rows), optimizer);
}

Status LinearModel::Update(const BatchView& batch, Optimizer* optimizer,
                           ExecutionEngine* engine) {
  if (batch.empty()) return Status::OK();
  if (options_.fit_bias && options_.init_bias_to_label_mean &&
      !bias_initialized_) {
    double sum = 0.0;
    for (size_t r = 0; r < batch.num_rows(); ++r) sum += batch.label(r);
    bias_ = sum / static_cast<double>(batch.num_rows());
    bias_initialized_ = true;
  }
  EnsureDim(batch.dim());
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  CDPIPE_RETURN_NOT_OK(ComputeGradient(batch, &grad, &bias_grad, engine));
  ApplyGradient(grad, bias_grad, optimizer);
  return Status::OK();
}

Result<double> LinearModel::AverageLoss(const FeatureData& batch) const {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("cannot compute loss of an empty batch");
  }
  double total = 0.0;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    total += EvalLoss(options_.loss, Predict(batch.features[r]),
                      batch.labels[r])
                 .loss;
  }
  return total / static_cast<double>(batch.num_rows());
}

Status LinearModel::SaveState(Serializer* out) const {
  out->WriteString("model.loss", LossKindName(options_.loss));
  out->WriteDouble("model.l2_reg", options_.l2_reg);
  out->WriteInt("model.fit_bias", options_.fit_bias ? 1 : 0);
  out->WriteInt("model.bias_initialized", bias_initialized_ ? 1 : 0);
  out->WriteDouble("model.bias", bias_);
  out->WriteDoubleVector("model.weights", weights_.values());
  return Status::OK();
}

Status LinearModel::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(std::string loss, in->ReadString("model.loss"));
  if (loss != LossKindName(options_.loss)) {
    return Status::InvalidArgument("checkpoint loss '" + loss +
                                   "' does not match model loss '" +
                                   LossKindName(options_.loss) + "'");
  }
  CDPIPE_ASSIGN_OR_RETURN(options_.l2_reg, in->ReadDouble("model.l2_reg"));
  CDPIPE_ASSIGN_OR_RETURN(int64_t fit_bias, in->ReadInt("model.fit_bias"));
  options_.fit_bias = fit_bias != 0;
  CDPIPE_ASSIGN_OR_RETURN(int64_t bias_initialized,
                          in->ReadInt("model.bias_initialized"));
  bias_initialized_ = bias_initialized != 0;
  CDPIPE_ASSIGN_OR_RETURN(bias_, in->ReadDouble("model.bias"));
  CDPIPE_ASSIGN_OR_RETURN(std::vector<double> weights,
                          in->ReadDoubleVector("model.weights"));
  weights_ = DenseVector(std::move(weights));
  return Status::OK();
}

std::string LinearModel::ToString() const {
  return StrFormat("LinearModel(loss=%s, l2=%g, dim=%u, |w|=%.4f, b=%.4f)",
                   LossKindName(options_.loss), options_.l2_reg, dim(),
                   weights_.L2Norm(), bias_);
}

}  // namespace cdpipe
