#include "src/ml/linear_model.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

LinearModel::LinearModel(Options options)
    : options_(options), weights_(options.initial_dim) {}

double LinearModel::Predict(const SparseVector& x) const {
  // Dimensions beyond the current weight vector have zero weight; guard so
  // prediction works before EnsureDim has seen the widest batch.
  double score = options_.fit_bias ? bias_ : 0.0;
  const auto& idx = x.indices();
  const auto& val = x.values();
  const size_t dim = weights_.dim();
  for (size_t k = 0; k < idx.size(); ++k) {
    if (idx[k] < dim) score += val[k] * weights_[idx[k]];
  }
  return score;
}

void LinearModel::EnsureDim(uint32_t dim) {
  if (dim > weights_.dim()) weights_.Resize(dim);
}

Status LinearModel::ComputeGradient(const FeatureData& batch,
                                    std::vector<GradEntry>* grad,
                                    double* bias_grad) const {
  grad->clear();
  *bias_grad = 0.0;
  if (batch.num_rows() == 0) return Status::OK();
  CDPIPE_RETURN_NOT_OK(batch.Validate());
  if (batch.dim > weights_.dim()) {
    return Status::FailedPrecondition(
        "batch dim " + std::to_string(batch.dim) + " exceeds model dim " +
        std::to_string(weights_.dim()) + "; call EnsureDim first");
  }

  const double inv_n = 1.0 / static_cast<double>(batch.num_rows());
  std::unordered_map<uint32_t, double> accum;
  accum.reserve(batch.num_rows() * 4);
  double bias_accum = 0.0;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    const SparseVector& x = batch.features[r];
    const LossGrad lg = EvalLoss(options_.loss, Predict(x), batch.labels[r]);
    const auto& idx = x.indices();
    const auto& val = x.values();
    for (size_t k = 0; k < idx.size(); ++k) {
      // Zero-loss examples still *touch* their coordinates so the lazy L2
      // term below applies to every coordinate present in the mini-batch.
      accum[idx[k]] += lg.dloss_dpred * val[k];
    }
    bias_accum += lg.dloss_dpred;
  }

  grad->reserve(accum.size());
  for (const auto& [index, g] : accum) {
    double value = g * inv_n;
    if (options_.l2_reg > 0.0) value += options_.l2_reg * weights_[index];
    if (value != 0.0) grad->push_back(GradEntry{index, value});
  }
  std::sort(grad->begin(), grad->end(),
            [](const GradEntry& a, const GradEntry& b) {
              return a.index < b.index;
            });
  *bias_grad = options_.fit_bias ? bias_accum * inv_n : 0.0;
  return Status::OK();
}

void LinearModel::ApplyGradient(const std::vector<GradEntry>& grad,
                                double bias_grad, Optimizer* optimizer) {
  CDPIPE_CHECK(optimizer != nullptr);
  optimizer->Step(grad, options_.fit_bias ? bias_grad : 0.0, &weights_,
                  &bias_);
  if (!options_.fit_bias) bias_ = 0.0;
}

Status LinearModel::Update(const FeatureData& batch, Optimizer* optimizer) {
  if (batch.num_rows() == 0) return Status::OK();
  if (options_.fit_bias && options_.init_bias_to_label_mean &&
      !bias_initialized_) {
    double sum = 0.0;
    for (double label : batch.labels) sum += label;
    bias_ = sum / static_cast<double>(batch.num_rows());
    bias_initialized_ = true;
  }
  EnsureDim(batch.dim);
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  CDPIPE_RETURN_NOT_OK(ComputeGradient(batch, &grad, &bias_grad));
  ApplyGradient(grad, bias_grad, optimizer);
  return Status::OK();
}

Result<double> LinearModel::AverageLoss(const FeatureData& batch) const {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("cannot compute loss of an empty batch");
  }
  double total = 0.0;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    total += EvalLoss(options_.loss, Predict(batch.features[r]),
                      batch.labels[r])
                 .loss;
  }
  return total / static_cast<double>(batch.num_rows());
}

Status LinearModel::SaveState(Serializer* out) const {
  out->WriteString("model.loss", LossKindName(options_.loss));
  out->WriteDouble("model.l2_reg", options_.l2_reg);
  out->WriteInt("model.fit_bias", options_.fit_bias ? 1 : 0);
  out->WriteInt("model.bias_initialized", bias_initialized_ ? 1 : 0);
  out->WriteDouble("model.bias", bias_);
  out->WriteDoubleVector("model.weights", weights_.values());
  return Status::OK();
}

Status LinearModel::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(std::string loss, in->ReadString("model.loss"));
  if (loss != LossKindName(options_.loss)) {
    return Status::InvalidArgument("checkpoint loss '" + loss +
                                   "' does not match model loss '" +
                                   LossKindName(options_.loss) + "'");
  }
  CDPIPE_ASSIGN_OR_RETURN(options_.l2_reg, in->ReadDouble("model.l2_reg"));
  CDPIPE_ASSIGN_OR_RETURN(int64_t fit_bias, in->ReadInt("model.fit_bias"));
  options_.fit_bias = fit_bias != 0;
  CDPIPE_ASSIGN_OR_RETURN(int64_t bias_initialized,
                          in->ReadInt("model.bias_initialized"));
  bias_initialized_ = bias_initialized != 0;
  CDPIPE_ASSIGN_OR_RETURN(bias_, in->ReadDouble("model.bias"));
  CDPIPE_ASSIGN_OR_RETURN(std::vector<double> weights,
                          in->ReadDoubleVector("model.weights"));
  weights_ = DenseVector(std::move(weights));
  return Status::OK();
}

std::string LinearModel::ToString() const {
  return StrFormat("LinearModel(loss=%s, l2=%g, dim=%u, |w|=%.4f, b=%.4f)",
                   LossKindName(options_.loss), options_.l2_reg, dim(),
                   weights_.L2Norm(), bias_);
}

}  // namespace cdpipe
