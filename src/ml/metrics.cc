#include "src/ml/metrics.h"

#include <cmath>

namespace cdpipe {

void MisclassificationRate::Add(double prediction, double label) {
  ++count_;
  const bool predicted_positive = prediction >= 0.0;
  const bool actual_positive = label > 0.0;
  if (predicted_positive != actual_positive) ++errors_;
}

double MisclassificationRate::Value() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(errors_) / static_cast<double>(count_);
}

void Rmse::Add(double prediction, double label) {
  ++count_;
  const double diff = prediction - label;
  sum_squared_error_ += diff * diff;
}

double Rmse::Value() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sum_squared_error_ / static_cast<double>(count_));
}

void Rmsle::Add(double prediction, double label) {
  ++count_;
  const double p = prediction > 0.0 ? prediction : 0.0;
  const double y = label > 0.0 ? label : 0.0;
  const double diff = std::log1p(p) - std::log1p(y);
  sum_squared_error_ += diff * diff;
}

double Rmsle::Value() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sum_squared_error_ / static_cast<double>(count_));
}

void MeanAbsoluteError::Add(double prediction, double label) {
  ++count_;
  sum_abs_error_ += std::abs(prediction - label);
}

double MeanAbsoluteError::Value() const {
  if (count_ == 0) return 0.0;
  return sum_abs_error_ / static_cast<double>(count_);
}

}  // namespace cdpipe
