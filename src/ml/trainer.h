#ifndef CDPIPE_ML_TRAINER_H_
#define CDPIPE_ML_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/engine/execution_engine.h"
#include "src/ml/batch_view.h"
#include "src/ml/linear_model.h"
#include "src/ml/optimizer.h"

namespace cdpipe {

/// Offline mini-batch SGD training over a fixed dataset, used for the
/// initial model training and by the periodical deployment's full
/// retraining.  Iterates epochs of shuffled mini-batches until the relative
/// change of the weight vector falls below `tolerance` or `max_epochs` is
/// reached.
///
/// Mini-batches are zero-copy BatchViews into the input chunks: the shuffled
/// epoch index holds (chunk, row) references and each batch is a subrange of
/// it, so no sparse row is ever copied or dim-widened on the training path.
class BatchTrainer {
 public:
  struct Options {
    int max_epochs = 20;
    /// Examples per mini-batch; 0 = full batch (batch gradient descent,
    /// i.e. the paper's sampling ratio of 1.0 for initial training).
    size_t batch_size = 0;
    /// Stop when ||w_t - w_{t-1}|| / max(1, ||w_{t-1}||) < tolerance after
    /// an epoch.
    double tolerance = 1e-4;
    bool shuffle = true;
    /// Re-scan the full dataset after training to fill Stats::final_loss.
    /// Purely diagnostic and costs one extra pass over every row of every
    /// chunk, so it is opt-in (off by default).
    bool compute_final_loss = false;
    /// Materialize each mini-batch as a copied FeatureData instead of a
    /// BatchView.  Kept only as the baseline for the equivalence tests and
    /// bench_sgd_throughput; produces bit-identical results to the view
    /// path (both feed the same gradient kernel).
    bool use_legacy_copy_path = false;
  };

  struct Stats {
    int epochs_run = 0;
    int64_t sgd_iterations = 0;
    int64_t examples_visited = 0;
    bool converged = false;
    /// Mean loss over all rows; 0.0 unless Options::compute_final_loss.
    double final_loss = 0.0;
  };

  explicit BatchTrainer(Options options) : options_(options) {}

  /// Trains `model` in place over the concatenation of `chunks` using
  /// `optimizer`.  Deterministic given `rng` — the result is independent of
  /// `engine` (sharded gradients merge in fixed order), which only speeds
  /// up gradient accumulation when multi-threaded.
  Result<Stats> Train(const std::vector<const FeatureData*>& chunks,
                      LinearModel* model, Optimizer* optimizer, Rng* rng,
                      ExecutionEngine* engine = nullptr) const;

 private:
  Options options_;
};

}  // namespace cdpipe

#endif  // CDPIPE_ML_TRAINER_H_
