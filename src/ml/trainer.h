#ifndef CDPIPE_ML_TRAINER_H_
#define CDPIPE_ML_TRAINER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/ml/linear_model.h"
#include "src/ml/optimizer.h"

namespace cdpipe {

/// Offline mini-batch SGD training over a fixed dataset, used for the
/// initial model training and by the periodical deployment's full
/// retraining.  Iterates epochs of shuffled mini-batches until the relative
/// change of the weight vector falls below `tolerance` or `max_epochs` is
/// reached.
class BatchTrainer {
 public:
  struct Options {
    int max_epochs = 20;
    /// Examples per mini-batch; 0 = full batch (batch gradient descent,
    /// i.e. the paper's sampling ratio of 1.0 for initial training).
    size_t batch_size = 0;
    /// Stop when ||w_t - w_{t-1}|| / max(1, ||w_{t-1}||) < tolerance after
    /// an epoch.
    double tolerance = 1e-4;
    bool shuffle = true;
  };

  struct Stats {
    int epochs_run = 0;
    int64_t sgd_iterations = 0;
    int64_t examples_visited = 0;
    bool converged = false;
    double final_loss = 0.0;
  };

  explicit BatchTrainer(Options options) : options_(options) {}

  /// Trains `model` in place over the concatenation of `chunks` using
  /// `optimizer`.  Deterministic given `rng`.
  Result<Stats> Train(const std::vector<const FeatureData*>& chunks,
                      LinearModel* model, Optimizer* optimizer,
                      Rng* rng) const;

 private:
  Options options_;
};

}  // namespace cdpipe

#endif  // CDPIPE_ML_TRAINER_H_
