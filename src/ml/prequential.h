#ifndef CDPIPE_ML_PREQUENTIAL_H_
#define CDPIPE_ML_PREQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ml/metrics.h"

namespace cdpipe {

/// Prequential ("test-then-train") evaluation, Dawid 1984: every incoming
/// example is first used to evaluate the deployed model, then used for
/// training.  This is the paper's quality measure for all deployment
/// experiments (§5.1).
///
/// Tracks the cumulative metric and, optionally, a sliding-window metric
/// over the last `window` observations (useful to see recovery after drift,
/// which the cumulative curve smooths out).
class PrequentialEvaluator {
 public:
  struct Point {
    int64_t observations = 0;
    double cumulative = 0.0;
    double windowed = 0.0;
  };

  /// `window` = 0 disables the sliding-window metric.
  explicit PrequentialEvaluator(std::unique_ptr<Metric> metric,
                                size_t window = 0);

  /// Records one test-then-train observation (the caller is responsible for
  /// doing the training part afterwards).
  void Observe(double prediction, double label);

  int64_t Count() const { return metric_->Count(); }
  double CumulativeValue() const { return metric_->Value(); }
  /// Sum of the per-example error signal so far (see Metric::AggregateMass).
  double AggregateMass() const { return metric_->AggregateMass(); }
  /// Metric over the last `window` observations (cumulative value when the
  /// window is disabled or not yet full).
  double WindowedValue() const;

  /// Appends the current state to the recorded curve; called by deployment
  /// drivers once per chunk.
  void RecordPoint();
  const std::vector<Point>& curve() const { return curve_; }

  const std::string metric_name() const { return metric_->name(); }

 private:
  std::unique_ptr<Metric> metric_;
  std::unique_ptr<Metric> window_metric_template_;
  size_t window_;
  /// Two half-open window metrics rotated every `window_`/2 observations —
  /// O(1) approximation of a sliding window without storing observations.
  std::unique_ptr<Metric> window_current_;
  std::unique_ptr<Metric> window_previous_;
  int64_t window_fill_ = 0;
  std::vector<Point> curve_;
};

}  // namespace cdpipe

#endif  // CDPIPE_ML_PREQUENTIAL_H_
