#ifndef CDPIPE_ML_LOSS_H_
#define CDPIPE_ML_LOSS_H_

#include <string>

namespace cdpipe {

/// Loss functions for SGD-trained linear models.  Classification losses
/// (hinge, logistic) expect labels in {-1, +1}; squared loss is for
/// regression.
enum class LossKind {
  kSquared,   ///< 0.5 (p - y)^2            — linear regression
  kHinge,     ///< max(0, 1 - y p)          — linear SVM
  kLogistic,  ///< log(1 + exp(-y p))       — logistic regression
};

const char* LossKindName(LossKind kind);

/// Loss value and its derivative with respect to the raw prediction p.
struct LossGrad {
  double loss = 0.0;
  double dloss_dpred = 0.0;
};

/// Evaluates the loss and its gradient for one example.
LossGrad EvalLoss(LossKind kind, double pred, double label);

/// Logistic sigmoid with guarded exponentials.
double Sigmoid(double x);

}  // namespace cdpipe

#endif  // CDPIPE_ML_LOSS_H_
