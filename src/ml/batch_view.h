#ifndef CDPIPE_ML_BATCH_VIEW_H_
#define CDPIPE_ML_BATCH_VIEW_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {

/// A zero-copy training batch: an ordered sequence of rows borrowed from
/// already-materialized feature chunks, plus a nominal dimension.
///
/// The proactive-training hot path (paper §3.3) samples k chunks per SGD
/// iteration; materializing them into one merged FeatureData used to copy
/// every sparse row (and reallocate rows whose nominal dim had to widen).
/// A BatchView replaces both copies with references: mixed nominal dims
/// collapse into a single `dim` (the maximum), which is sound because
/// nominal-dim widening never changes indices or values — consumers such
/// as LinearModel::Predict already guard out-of-range indices.
///
/// Ownership / lifetime: a BatchView owns nothing.  It borrows (a) the
/// FeatureData chunks behind the row references and (b) the RowRef array
/// itself.  Both must outlive the view; in practice views live for one
/// SGD step inside a single call frame.  Rows are *not* re-validated per
/// step — collect them through CollectRows (which validates each chunk
/// once) or from chunks the pipeline already validated.
class BatchView {
 public:
  /// One borrowed example: a row of a materialized feature chunk.
  struct RowRef {
    const FeatureData* chunk = nullptr;
    uint32_t row = 0;
  };

  BatchView() = default;

  /// View over `num_rows` references starting at `rows`.  `dim` must be
  /// >= every referenced chunk's nominal dim.
  BatchView(uint32_t dim, const RowRef* rows, size_t num_rows)
      : dim_(dim), rows_(rows), num_rows_(num_rows) {}

  BatchView(uint32_t dim, const std::vector<RowRef>& rows)
      : BatchView(dim, rows.data(), rows.size()) {}

  /// Flattens `chunks` into row references in chunk-then-row order and
  /// reports the widest nominal dim.  Validates each chunk exactly once
  /// (null pointer, internal consistency) so per-step consumers don't have
  /// to.  The returned vector is the backing storage for subsequent
  /// BatchView instances; keep it alive as long as any view over it.
  static Result<std::vector<RowRef>> CollectRows(
      const std::vector<const FeatureData*>& chunks, uint32_t* max_dim);

  uint32_t dim() const { return dim_; }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  const SparseVector& feature(size_t i) const {
    const RowRef& ref = rows_[i];
    return ref.chunk->features[ref.row];
  }
  double label(size_t i) const {
    const RowRef& ref = rows_[i];
    return ref.chunk->labels[ref.row];
  }

 private:
  uint32_t dim_ = 0;
  const RowRef* rows_ = nullptr;
  size_t num_rows_ = 0;
};

}  // namespace cdpipe

#endif  // CDPIPE_ML_BATCH_VIEW_H_
