#include "src/ml/trainer.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cdpipe {

Result<BatchTrainer::Stats> BatchTrainer::Train(
    const std::vector<const FeatureData*>& chunks, LinearModel* model,
    Optimizer* optimizer, Rng* rng, ExecutionEngine* engine) const {
  CDPIPE_CHECK(model != nullptr);
  CDPIPE_CHECK(optimizer != nullptr);
  CDPIPE_CHECK(rng != nullptr);

  // Build a flat index of row references once (validating each chunk once);
  // epochs shuffle it and mini-batches are zero-copy subranges of it.
  uint32_t max_dim = 0;
  Result<std::vector<BatchView::RowRef>> collected =
      BatchView::CollectRows(chunks, &max_dim);
  if (!collected.ok()) {
    return Status::InvalidArgument("BatchTrainer: " +
                                   collected.status().message());
  }
  std::vector<BatchView::RowRef> index = std::move(collected).value();
  Stats stats;
  if (index.empty()) return stats;
  model->EnsureDim(max_dim);

  const size_t batch_size =
      options_.batch_size == 0 ? index.size()
                               : std::min(options_.batch_size, index.size());

  DenseVector previous = model->weights();
  double previous_bias = model->bias();
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (options_.shuffle) rng->Shuffle(&index);
    for (size_t start = 0; start < index.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, index.size());
      if (options_.use_legacy_copy_path) {
        // Baseline: materialize the mini-batch (copying every row and
        // widening mixed nominal dims).  Same gradient kernel as the view
        // path, so the trained parameters are bit-identical.
        FeatureData batch;
        batch.dim = max_dim;
        batch.features.reserve(end - start);
        batch.labels.reserve(end - start);
        for (size_t i = start; i < end; ++i) {
          const BatchView::RowRef& ref = index[i];
          const SparseVector& x = ref.chunk->features[ref.row];
          if (x.dim() != max_dim) {
            CDPIPE_ASSIGN_OR_RETURN(SparseVector widened, x.WithDim(max_dim));
            batch.features.push_back(std::move(widened));
          } else {
            batch.features.push_back(x);
          }
          batch.labels.push_back(ref.chunk->labels[ref.row]);
        }
        CDPIPE_RETURN_NOT_OK(model->Update(batch, optimizer));
      } else {
        const BatchView batch(max_dim, index.data() + start, end - start);
        CDPIPE_RETURN_NOT_OK(model->Update(batch, optimizer, engine));
      }
      ++stats.sgd_iterations;
      stats.examples_visited += static_cast<int64_t>(end - start);
    }
    ++stats.epochs_run;

    // Convergence test on the relative parameter change.
    DenseVector delta = model->weights();
    delta.Axpy(-1.0, previous);
    const double bias_delta = model->bias() - previous_bias;
    const double change =
        std::sqrt(delta.L2NormSquared() + bias_delta * bias_delta);
    const double scale = std::max(1.0, previous.L2Norm());
    previous = model->weights();
    previous_bias = model->bias();
    if (change / scale < options_.tolerance) {
      stats.converged = true;
      break;
    }
  }

  if (options_.compute_final_loss) {
    // Full-dataset loss scan (diagnostic only, opt-in: one extra pass over
    // every row of every chunk).
    double total = 0.0;
    int64_t n = 0;
    for (const FeatureData* chunk : chunks) {
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        total += EvalLoss(model->options().loss,
                          model->Predict(chunk->features[r]),
                          chunk->labels[r])
                     .loss;
        ++n;
      }
    }
    stats.final_loss = n > 0 ? total / static_cast<double>(n) : 0.0;
  }
  return stats;
}

}  // namespace cdpipe
