#include "src/ml/trainer.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cdpipe {

Result<BatchTrainer::Stats> BatchTrainer::Train(
    const std::vector<const FeatureData*>& chunks, LinearModel* model,
    Optimizer* optimizer, Rng* rng) const {
  CDPIPE_CHECK(model != nullptr);
  CDPIPE_CHECK(optimizer != nullptr);
  CDPIPE_CHECK(rng != nullptr);

  // Build a flat index of (chunk, row) pairs once; epochs shuffle it.
  uint32_t max_dim = 0;
  std::vector<std::pair<uint32_t, uint32_t>> index;
  for (uint32_t c = 0; c < chunks.size(); ++c) {
    const FeatureData* chunk = chunks[c];
    if (chunk == nullptr) {
      return Status::InvalidArgument("null chunk passed to BatchTrainer");
    }
    CDPIPE_RETURN_NOT_OK(chunk->Validate());
    max_dim = std::max(max_dim, chunk->dim);
    for (uint32_t r = 0; r < chunk->num_rows(); ++r) {
      index.emplace_back(c, r);
    }
  }
  Stats stats;
  if (index.empty()) return stats;
  model->EnsureDim(max_dim);

  const size_t batch_size =
      options_.batch_size == 0 ? index.size()
                               : std::min(options_.batch_size, index.size());

  DenseVector previous = model->weights();
  double previous_bias = model->bias();
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    if (options_.shuffle) rng->Shuffle(&index);
    for (size_t start = 0; start < index.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, index.size());
      FeatureData batch;
      batch.dim = max_dim;
      batch.features.reserve(end - start);
      batch.labels.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        const auto [c, r] = index[i];
        SparseVector x = chunks[c]->features[r];
        // Normalize nominal dims so Validate() passes on mixed-dim inputs.
        if (x.dim() != max_dim) {
          auto widened = SparseVector::FromSorted(
              max_dim, std::vector<uint32_t>(x.indices()),
              std::vector<double>(x.values()));
          if (!widened.ok()) return widened.status();
          x = std::move(widened).value();
        }
        batch.features.push_back(std::move(x));
        batch.labels.push_back(chunks[c]->labels[r]);
      }
      CDPIPE_RETURN_NOT_OK(model->Update(batch, optimizer));
      ++stats.sgd_iterations;
      stats.examples_visited += static_cast<int64_t>(end - start);
    }
    ++stats.epochs_run;

    // Convergence test on the relative parameter change.
    DenseVector delta = model->weights();
    delta.Axpy(-1.0, previous);
    const double bias_delta = model->bias() - previous_bias;
    const double change =
        std::sqrt(delta.L2NormSquared() + bias_delta * bias_delta);
    const double scale = std::max(1.0, previous.L2Norm());
    previous = model->weights();
    previous_bias = model->bias();
    if (change / scale < options_.tolerance) {
      stats.converged = true;
      break;
    }
  }

  // Final loss over everything (diagnostic only).
  double total = 0.0;
  int64_t n = 0;
  for (const FeatureData* chunk : chunks) {
    for (size_t r = 0; r < chunk->num_rows(); ++r) {
      total += EvalLoss(model->options().loss,
                        model->Predict(chunk->features[r]), chunk->labels[r])
                   .loss;
      ++n;
    }
  }
  stats.final_loss = n > 0 ? total / static_cast<double>(n) : 0.0;
  return stats;
}

}  // namespace cdpipe
