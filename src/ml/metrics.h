#ifndef CDPIPE_ML_METRICS_H_
#define CDPIPE_ML_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>

namespace cdpipe {

/// Streaming evaluation metric: feed (prediction, label) pairs, read the
/// aggregate at any point.  All implementations are O(1) per observation —
/// a requirement of prequential evaluation over long deployments.
class Metric {
 public:
  virtual ~Metric() = default;

  virtual std::string name() const = 0;
  virtual void Add(double prediction, double label) = 0;
  /// Current aggregate value; 0 before any observation.
  virtual double Value() const = 0;
  virtual int64_t Count() const = 0;
  /// Sum of the additive per-example error signal underlying the metric
  /// (error count for misclassification, sum of squared errors for
  /// RMSE/RMSLE, sum of absolute errors for MAE).  Differences of this mass
  /// across a chunk give the chunk's mean error signal — the input of the
  /// drift detectors.
  virtual double AggregateMass() const { return Value() * Count(); }
  virtual void Reset() = 0;
  virtual std::unique_ptr<Metric> Clone() const = 0;
};

/// Fraction of observations where sign(prediction) != sign(label).
/// Labels are expected in {-1, +1}; the raw margin is accepted as the
/// prediction.
class MisclassificationRate final : public Metric {
 public:
  std::string name() const override { return "misclassification"; }
  void Add(double prediction, double label) override;
  double Value() const override;
  int64_t Count() const override { return count_; }
  void Reset() override { count_ = errors_ = 0; }
  std::unique_ptr<Metric> Clone() const override {
    return std::make_unique<MisclassificationRate>(*this);
  }

 private:
  int64_t count_ = 0;
  int64_t errors_ = 0;
};

/// Root mean squared error.  When predictions and labels are log1p-space
/// values (as in the Taxi pipeline, which regresses log1p(duration)), this
/// equals the RMSLE of the raw-space predictions.
class Rmse final : public Metric {
 public:
  std::string name() const override { return "rmse"; }
  void Add(double prediction, double label) override;
  double Value() const override;
  int64_t Count() const override { return count_; }
  double AggregateMass() const override { return sum_squared_error_; }
  void Reset() override {
    count_ = 0;
    sum_squared_error_ = 0.0;
  }
  std::unique_ptr<Metric> Clone() const override {
    return std::make_unique<Rmse>(*this);
  }

 private:
  int64_t count_ = 0;
  double sum_squared_error_ = 0.0;
};

/// Root mean squared logarithmic error over raw-space (non-negative)
/// predictions and labels: sqrt(mean((log1p(p) - log1p(y))^2)).  Negative
/// predictions are clamped to 0, matching the Kaggle evaluation.
class Rmsle final : public Metric {
 public:
  std::string name() const override { return "rmsle"; }
  void Add(double prediction, double label) override;
  double Value() const override;
  int64_t Count() const override { return count_; }
  double AggregateMass() const override { return sum_squared_error_; }
  void Reset() override {
    count_ = 0;
    sum_squared_error_ = 0.0;
  }
  std::unique_ptr<Metric> Clone() const override {
    return std::make_unique<Rmsle>(*this);
  }

 private:
  int64_t count_ = 0;
  double sum_squared_error_ = 0.0;
};

/// Mean absolute error.
class MeanAbsoluteError final : public Metric {
 public:
  std::string name() const override { return "mae"; }
  void Add(double prediction, double label) override;
  double Value() const override;
  int64_t Count() const override { return count_; }
  void Reset() override {
    count_ = 0;
    sum_abs_error_ = 0.0;
  }
  std::unique_ptr<Metric> Clone() const override {
    return std::make_unique<MeanAbsoluteError>(*this);
  }

 private:
  int64_t count_ = 0;
  double sum_abs_error_ = 0.0;
};

}  // namespace cdpipe

#endif  // CDPIPE_ML_METRICS_H_
