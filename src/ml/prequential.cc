#include "src/ml/prequential.h"

#include <utility>

#include "src/common/logging.h"

namespace cdpipe {

PrequentialEvaluator::PrequentialEvaluator(std::unique_ptr<Metric> metric,
                                           size_t window)
    : metric_(std::move(metric)), window_(window) {
  CDPIPE_CHECK(metric_ != nullptr);
  if (window_ > 0) {
    window_current_ = metric_->Clone();
    window_current_->Reset();
    window_previous_ = metric_->Clone();
    window_previous_->Reset();
  }
}

void PrequentialEvaluator::Observe(double prediction, double label) {
  metric_->Add(prediction, label);
  if (window_ == 0) return;
  window_current_->Add(prediction, label);
  ++window_fill_;
  const int64_t half = static_cast<int64_t>(window_ / 2) + 1;
  if (window_fill_ >= half) {
    // Rotate: the previous half-window becomes the tail, current restarts.
    std::swap(window_previous_, window_current_);
    window_current_->Reset();
    window_fill_ = 0;
  }
}

double PrequentialEvaluator::WindowedValue() const {
  if (window_ == 0) return metric_->Value();
  // Blend the two half-windows by their observation counts.
  const int64_t n_prev = window_previous_->Count();
  const int64_t n_cur = window_current_->Count();
  if (n_prev + n_cur == 0) return metric_->Value();
  const double weighted = window_previous_->Value() * n_prev +
                          window_current_->Value() * n_cur;
  return weighted / static_cast<double>(n_prev + n_cur);
}

void PrequentialEvaluator::RecordPoint() {
  curve_.push_back(Point{metric_->Count(), metric_->Value(), WindowedValue()});
}

}  // namespace cdpipe
