#include "src/ml/loss.h"

#include <cmath>

namespace cdpipe {

const char* LossKindName(LossKind kind) {
  switch (kind) {
    case LossKind::kSquared:
      return "squared";
    case LossKind::kHinge:
      return "hinge";
    case LossKind::kLogistic:
      return "logistic";
  }
  return "?";
}

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

LossGrad EvalLoss(LossKind kind, double pred, double label) {
  switch (kind) {
    case LossKind::kSquared: {
      const double diff = pred - label;
      return {0.5 * diff * diff, diff};
    }
    case LossKind::kHinge: {
      const double margin = label * pred;
      if (margin >= 1.0) return {0.0, 0.0};
      return {1.0 - margin, -label};
    }
    case LossKind::kLogistic: {
      const double margin = label * pred;
      // log(1 + e^{-m}) computed stably.
      const double loss =
          margin > 0 ? std::log1p(std::exp(-margin))
                     : -margin + std::log1p(std::exp(margin));
      return {loss, -label * Sigmoid(-margin)};
    }
  }
  return {};
}

}  // namespace cdpipe
