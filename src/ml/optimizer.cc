#include "src/ml/optimizer.h"

#include <cmath>

#include "src/common/logging.h"

namespace cdpipe {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "sgd";
    case OptimizerKind::kMomentum:
      return "momentum";
    case OptimizerKind::kAdam:
      return "adam";
    case OptimizerKind::kRmsprop:
      return "rmsprop";
    case OptimizerKind::kAdadelta:
      return "adadelta";
  }
  return "?";
}

namespace {

/// Grows `v` (zero-filled) so that `v[index]` is valid.
void EnsureSize(std::vector<double>* v, size_t index) {
  if (v->size() <= index) v->resize(index + 1, 0.0);
}

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(const OptimizerOptions& options) : options_(options) {}

  OptimizerKind kind() const override { return OptimizerKind::kSgd; }
  std::string name() const override { return "sgd"; }

  void Step(const std::vector<GradEntry>& grad, double bias_grad,
            DenseVector* weights, double* bias) override {
    ++step_;
    const double eta =
        options_.learning_rate /
        (1.0 + options_.decay * static_cast<double>(step_ - 1));
    for (const GradEntry& g : grad) {
      (*weights)[g.index] -= eta * g.value;
    }
    *bias -= eta * bias_grad;
  }

  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<SgdOptimizer>(*this);
  }

  Status SaveState(Serializer* out) const override {
    out->WriteInt("sgd.step", step_);
    return Status::OK();
  }
  Status LoadState(Deserializer* in) override {
    CDPIPE_ASSIGN_OR_RETURN(step_, in->ReadInt("sgd.step"));
    return Status::OK();
  }

 private:
  OptimizerOptions options_;
};

class MomentumOptimizer final : public Optimizer {
 public:
  explicit MomentumOptimizer(const OptimizerOptions& options)
      : options_(options) {}

  OptimizerKind kind() const override { return OptimizerKind::kMomentum; }
  std::string name() const override { return "momentum"; }

  void Step(const std::vector<GradEntry>& grad, double bias_grad,
            DenseVector* weights, double* bias) override {
    ++step_;
    const double gamma = options_.momentum;
    const double eta = options_.learning_rate;
    for (const GradEntry& g : grad) {
      EnsureSize(&velocity_, g.index);
      EnsureSize(&last_step_, g.index);
      // Lazy catch-up: while this coordinate was untouched its velocity kept
      // decaying and pushing the weight; apply the accumulated geometric
      // series in closed form, then the fresh update.
      const double skipped =
          static_cast<double>(step_ - 1) - last_step_[g.index];
      if (skipped > 0.0 && velocity_[g.index] != 0.0 && gamma > 0.0) {
        const double geo =
            gamma * (1.0 - std::pow(gamma, skipped)) / (1.0 - gamma);
        (*weights)[g.index] -= geo * velocity_[g.index];
        velocity_[g.index] *= std::pow(gamma, skipped);
      }
      velocity_[g.index] = gamma * velocity_[g.index] + eta * g.value;
      (*weights)[g.index] -= velocity_[g.index];
      last_step_[g.index] = static_cast<double>(step_);
    }
    bias_velocity_ = gamma * bias_velocity_ + eta * bias_grad;
    *bias -= bias_velocity_;
  }

  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<MomentumOptimizer>(*this);
  }

  void Reset() override {
    Optimizer::Reset();
    velocity_.clear();
    last_step_.clear();
    bias_velocity_ = 0.0;
  }

  Status SaveState(Serializer* out) const override {
    out->WriteInt("momentum.step", step_);
    out->WriteDoubleVector("momentum.velocity", velocity_);
    out->WriteDoubleVector("momentum.last_step", last_step_);
    out->WriteDouble("momentum.bias_velocity", bias_velocity_);
    return Status::OK();
  }
  Status LoadState(Deserializer* in) override {
    CDPIPE_ASSIGN_OR_RETURN(step_, in->ReadInt("momentum.step"));
    CDPIPE_ASSIGN_OR_RETURN(velocity_, in->ReadDoubleVector("momentum.velocity"));
    CDPIPE_ASSIGN_OR_RETURN(last_step_,
                            in->ReadDoubleVector("momentum.last_step"));
    CDPIPE_ASSIGN_OR_RETURN(bias_velocity_,
                            in->ReadDouble("momentum.bias_velocity"));
    return Status::OK();
  }

 private:
  OptimizerOptions options_;
  std::vector<double> velocity_;
  std::vector<double> last_step_;
  double bias_velocity_ = 0.0;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(const OptimizerOptions& options)
      : options_(options) {}

  OptimizerKind kind() const override { return OptimizerKind::kAdam; }
  std::string name() const override { return "adam"; }

  void Step(const std::vector<GradEntry>& grad, double bias_grad,
            DenseVector* weights, double* bias) override {
    ++step_;
    const double b1 = options_.beta1;
    const double b2 = options_.beta2;
    // Bias correction uses the global step (LazyAdam treatment of sparse
    // gradients: untouched moments are left as-is).
    const double correction1 =
        1.0 - std::pow(b1, static_cast<double>(step_));
    const double correction2 =
        1.0 - std::pow(b2, static_cast<double>(step_));
    const double eta = options_.learning_rate;
    const double eps = options_.epsilon;
    for (const GradEntry& g : grad) {
      EnsureSize(&m_, g.index);
      EnsureSize(&v_, g.index);
      m_[g.index] = b1 * m_[g.index] + (1.0 - b1) * g.value;
      v_[g.index] = b2 * v_[g.index] + (1.0 - b2) * g.value * g.value;
      const double mhat = m_[g.index] / correction1;
      const double vhat = v_[g.index] / correction2;
      (*weights)[g.index] -= eta * mhat / (std::sqrt(vhat) + eps);
    }
    bias_m_ = b1 * bias_m_ + (1.0 - b1) * bias_grad;
    bias_v_ = b2 * bias_v_ + (1.0 - b2) * bias_grad * bias_grad;
    *bias -= eta * (bias_m_ / correction1) /
             (std::sqrt(bias_v_ / correction2) + eps);
  }

  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<AdamOptimizer>(*this);
  }

  void Reset() override {
    Optimizer::Reset();
    m_.clear();
    v_.clear();
    bias_m_ = bias_v_ = 0.0;
  }

  Status SaveState(Serializer* out) const override {
    out->WriteInt("adam.step", step_);
    out->WriteDoubleVector("adam.m", m_);
    out->WriteDoubleVector("adam.v", v_);
    out->WriteDouble("adam.bias_m", bias_m_);
    out->WriteDouble("adam.bias_v", bias_v_);
    return Status::OK();
  }
  Status LoadState(Deserializer* in) override {
    CDPIPE_ASSIGN_OR_RETURN(step_, in->ReadInt("adam.step"));
    CDPIPE_ASSIGN_OR_RETURN(m_, in->ReadDoubleVector("adam.m"));
    CDPIPE_ASSIGN_OR_RETURN(v_, in->ReadDoubleVector("adam.v"));
    CDPIPE_ASSIGN_OR_RETURN(bias_m_, in->ReadDouble("adam.bias_m"));
    CDPIPE_ASSIGN_OR_RETURN(bias_v_, in->ReadDouble("adam.bias_v"));
    return Status::OK();
  }

 private:
  OptimizerOptions options_;
  std::vector<double> m_;
  std::vector<double> v_;
  double bias_m_ = 0.0;
  double bias_v_ = 0.0;
};

class RmspropOptimizer final : public Optimizer {
 public:
  explicit RmspropOptimizer(const OptimizerOptions& options)
      : options_(options) {}

  OptimizerKind kind() const override { return OptimizerKind::kRmsprop; }
  std::string name() const override { return "rmsprop"; }

  void Step(const std::vector<GradEntry>& grad, double bias_grad,
            DenseVector* weights, double* bias) override {
    ++step_;
    const double rho = options_.rho;
    const double eta = options_.learning_rate;
    const double eps = options_.epsilon;
    for (const GradEntry& g : grad) {
      EnsureSize(&mean_square_, g.index);
      mean_square_[g.index] =
          rho * mean_square_[g.index] + (1.0 - rho) * g.value * g.value;
      (*weights)[g.index] -=
          eta * g.value / (std::sqrt(mean_square_[g.index]) + eps);
    }
    bias_mean_square_ =
        rho * bias_mean_square_ + (1.0 - rho) * bias_grad * bias_grad;
    *bias -= eta * bias_grad / (std::sqrt(bias_mean_square_) + eps);
  }

  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<RmspropOptimizer>(*this);
  }

  void Reset() override {
    Optimizer::Reset();
    mean_square_.clear();
    bias_mean_square_ = 0.0;
  }

  Status SaveState(Serializer* out) const override {
    out->WriteInt("rmsprop.step", step_);
    out->WriteDoubleVector("rmsprop.mean_square", mean_square_);
    out->WriteDouble("rmsprop.bias_mean_square", bias_mean_square_);
    return Status::OK();
  }
  Status LoadState(Deserializer* in) override {
    CDPIPE_ASSIGN_OR_RETURN(step_, in->ReadInt("rmsprop.step"));
    CDPIPE_ASSIGN_OR_RETURN(mean_square_,
                            in->ReadDoubleVector("rmsprop.mean_square"));
    CDPIPE_ASSIGN_OR_RETURN(bias_mean_square_,
                            in->ReadDouble("rmsprop.bias_mean_square"));
    return Status::OK();
  }

 private:
  OptimizerOptions options_;
  std::vector<double> mean_square_;
  double bias_mean_square_ = 0.0;
};

class AdadeltaOptimizer final : public Optimizer {
 public:
  explicit AdadeltaOptimizer(const OptimizerOptions& options)
      : options_(options) {}

  OptimizerKind kind() const override { return OptimizerKind::kAdadelta; }
  std::string name() const override { return "adadelta"; }

  void Step(const std::vector<GradEntry>& grad, double bias_grad,
            DenseVector* weights, double* bias) override {
    ++step_;
    const double rho = options_.rho;
    const double eps = options_.epsilon;
    for (const GradEntry& g : grad) {
      EnsureSize(&accum_grad_, g.index);
      EnsureSize(&accum_update_, g.index);
      accum_grad_[g.index] =
          rho * accum_grad_[g.index] + (1.0 - rho) * g.value * g.value;
      const double update = -std::sqrt(accum_update_[g.index] + eps) /
                            std::sqrt(accum_grad_[g.index] + eps) * g.value;
      accum_update_[g.index] =
          rho * accum_update_[g.index] + (1.0 - rho) * update * update;
      (*weights)[g.index] += update;
    }
    bias_accum_grad_ =
        rho * bias_accum_grad_ + (1.0 - rho) * bias_grad * bias_grad;
    const double bias_update = -std::sqrt(bias_accum_update_ + eps) /
                               std::sqrt(bias_accum_grad_ + eps) * bias_grad;
    bias_accum_update_ =
        rho * bias_accum_update_ + (1.0 - rho) * bias_update * bias_update;
    *bias += bias_update;
  }

  std::unique_ptr<Optimizer> Clone() const override {
    return std::make_unique<AdadeltaOptimizer>(*this);
  }

  void Reset() override {
    Optimizer::Reset();
    accum_grad_.clear();
    accum_update_.clear();
    bias_accum_grad_ = bias_accum_update_ = 0.0;
  }

  Status SaveState(Serializer* out) const override {
    out->WriteInt("adadelta.step", step_);
    out->WriteDoubleVector("adadelta.accum_grad", accum_grad_);
    out->WriteDoubleVector("adadelta.accum_update", accum_update_);
    out->WriteDouble("adadelta.bias_accum_grad", bias_accum_grad_);
    out->WriteDouble("adadelta.bias_accum_update", bias_accum_update_);
    return Status::OK();
  }
  Status LoadState(Deserializer* in) override {
    CDPIPE_ASSIGN_OR_RETURN(step_, in->ReadInt("adadelta.step"));
    CDPIPE_ASSIGN_OR_RETURN(accum_grad_,
                            in->ReadDoubleVector("adadelta.accum_grad"));
    CDPIPE_ASSIGN_OR_RETURN(accum_update_,
                            in->ReadDoubleVector("adadelta.accum_update"));
    CDPIPE_ASSIGN_OR_RETURN(bias_accum_grad_,
                            in->ReadDouble("adadelta.bias_accum_grad"));
    CDPIPE_ASSIGN_OR_RETURN(bias_accum_update_,
                            in->ReadDouble("adadelta.bias_accum_update"));
    return Status::OK();
  }

 private:
  OptimizerOptions options_;
  std::vector<double> accum_grad_;
  std::vector<double> accum_update_;
  double bias_accum_grad_ = 0.0;
  double bias_accum_update_ = 0.0;
};

}  // namespace

std::unique_ptr<Optimizer> MakeOptimizer(const OptimizerOptions& options) {
  switch (options.kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(options);
    case OptimizerKind::kMomentum:
      return std::make_unique<MomentumOptimizer>(options);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(options);
    case OptimizerKind::kRmsprop:
      return std::make_unique<RmspropOptimizer>(options);
    case OptimizerKind::kAdadelta:
      return std::make_unique<AdadeltaOptimizer>(options);
  }
  CDPIPE_CHECK(false) << "unknown optimizer kind";
  return nullptr;
}

}  // namespace cdpipe
