#ifndef CDPIPE_ML_OPTIMIZER_H_
#define CDPIPE_ML_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/io/serialization.h"
#include "src/linalg/dense_vector.h"

namespace cdpipe {

/// One coordinate of a (sparse) gradient.
struct GradEntry {
  uint32_t index = 0;
  double value = 0.0;
};

/// Learning-rate adaptation strategies from §2.1 of the paper.
enum class OptimizerKind {
  kSgd,       ///< constant / decaying global rate
  kMomentum,  ///< Qian 1999
  kAdam,      ///< Kingma & Ba 2014
  kRmsprop,   ///< Tieleman & Hinton 2012
  kAdadelta,  ///< Zeiler 2012
};

const char* OptimizerKindName(OptimizerKind kind);

/// Per-coordinate adaptive SGD update rule.
///
/// The optimizer owns one state slot per weight coordinate plus one for the
/// model bias, grown on demand (feature dimensions can appear over time).
/// Gradients are sparse; implementations update only the touched
/// coordinates (the "lazy" sparse treatment standard in large-scale linear
/// learners).  Crucially for the paper's proactive training (§3.3), *all*
/// optimizer state needed by the next iteration lives in this object, so a
/// proactive step at an arbitrary later time is exactly one more mini-batch
/// SGD iteration — and warm starting a retraining is a simple Clone().
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual OptimizerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Applies one update step.  `grad` holds the regularized mini-batch
  /// gradient for the touched weight coordinates (indices < weights->dim());
  /// `bias_grad` is the bias gradient (always applied).
  virtual void Step(const std::vector<GradEntry>& grad, double bias_grad,
                    DenseVector* weights, double* bias) = 0;

  /// Number of steps applied so far.
  int64_t step_count() const { return step_; }

  /// Deep copy including all adaptation state (for warm starting).
  virtual std::unique_ptr<Optimizer> Clone() const = 0;

  /// Drops all adaptation state (cold start).
  virtual void Reset() { step_ = 0; }

  /// Checkpointing: persists / restores all adaptation state.  The loader
  /// must construct the same optimizer kind and hyperparameters first.
  virtual Status SaveState(Serializer* out) const = 0;
  virtual Status LoadState(Deserializer* in) = 0;

 protected:
  int64_t step_ = 0;
};

/// Hyperparameters shared by the factory below; unused fields are ignored
/// by optimizers that do not need them.
struct OptimizerOptions {
  OptimizerKind kind = OptimizerKind::kAdam;
  double learning_rate = 0.01;   ///< sgd / momentum / adam / rmsprop
  double decay = 0.0;            ///< sgd: eta_t = eta / (1 + decay * t)
  double momentum = 0.9;         ///< momentum: velocity retention
  double beta1 = 0.9;            ///< adam
  double beta2 = 0.999;          ///< adam
  double rho = 0.95;             ///< rmsprop / adadelta: decay of E[g^2]
  double epsilon = 1e-6;
};

/// Creates an optimizer from options.
std::unique_ptr<Optimizer> MakeOptimizer(const OptimizerOptions& options);

}  // namespace cdpipe

#endif  // CDPIPE_ML_OPTIMIZER_H_
