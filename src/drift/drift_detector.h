#ifndef CDPIPE_DRIFT_DRIFT_DETECTOR_H_
#define CDPIPE_DRIFT_DRIFT_DETECTOR_H_

#include <cstdint>
#include <memory>
#include <string>

namespace cdpipe {

/// Concept-drift detection — the paper's stated future work (§7: "we plan
/// to extend our platform to provide native support for both concept drift
/// and anomaly detection and alleviation").  Detectors consume a stream of
/// per-example error signals (0/1 misclassification indicators or positive
/// losses) and report when the error level rises significantly above its
/// running baseline.
enum class DriftState {
  kStable = 0,  ///< no evidence of drift
  kWarning,     ///< error creeping up; start collecting fresh data
  kDrift,       ///< change confirmed; the deployed model is stale
};

const char* DriftStateName(DriftState state);

class DriftDetector {
 public:
  virtual ~DriftDetector() = default;

  virtual std::string name() const = 0;

  /// Feeds one error observation and returns the detector state.
  virtual DriftState Observe(double error) = 0;

  virtual DriftState state() const = 0;
  virtual int64_t observations() const = 0;
  /// Total number of confirmed drifts so far.
  virtual int64_t drifts_detected() const = 0;

  /// Forgets the baseline and restarts (called after the platform has
  /// adapted to the new concept).
  virtual void Reset() = 0;

  virtual std::unique_ptr<DriftDetector> Clone() const = 0;
};

/// Page-Hinkley test: detects an increase of the mean of the error signal.
/// Maintains m_t = Σ (e_i - ē_i - δ) and fires when m_t - min(m_t) > λ.
/// δ absorbs tolerated noise, λ sets the detection threshold; larger λ means
/// fewer false alarms but slower detection.
class PageHinkleyDetector final : public DriftDetector {
 public:
  struct Options {
    double delta = 0.005;     ///< tolerated per-observation drift
    double lambda = 50.0;     ///< detection threshold
    /// Emit kWarning when the statistic crosses this fraction of lambda.
    double warning_fraction = 0.5;
    /// Observations to ignore while the baseline mean stabilizes.
    int64_t burn_in = 30;
  };

  PageHinkleyDetector() : PageHinkleyDetector(Options()) {}
  explicit PageHinkleyDetector(Options options);

  std::string name() const override { return "page-hinkley"; }
  DriftState Observe(double error) override;
  DriftState state() const override { return state_; }
  int64_t observations() const override { return count_; }
  int64_t drifts_detected() const override { return drifts_; }
  void Reset() override;
  std::unique_ptr<DriftDetector> Clone() const override {
    return std::make_unique<PageHinkleyDetector>(*this);
  }

  /// Current test statistic m_t - min(m_t) (exposed for tests).
  double Statistic() const { return cumulative_ - minimum_; }

 private:
  Options options_;
  DriftState state_ = DriftState::kStable;
  int64_t count_ = 0;
  int64_t drifts_ = 0;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double minimum_ = 0.0;
};

/// DDM (Gama et al. 2004): models the error rate of a classifier as a
/// Bernoulli proportion p with standard deviation s = sqrt(p(1-p)/n) and
/// tracks the minimum of p + s.  Warning at p + s > p_min + 2 s_min, drift
/// at p + s > p_min + 3 s_min.  Accepts 0/1 indicators or fractional
/// error rates in [0, 1] (chunk-level means).
class DdmDetector final : public DriftDetector {
 public:
  struct Options {
    double warning_sigmas = 2.0;
    double drift_sigmas = 3.0;
    int64_t min_observations = 30;
  };

  DdmDetector() : DdmDetector(Options()) {}
  explicit DdmDetector(Options options);

  std::string name() const override { return "ddm"; }
  DriftState Observe(double error) override;
  DriftState state() const override { return state_; }
  int64_t observations() const override { return count_; }
  int64_t drifts_detected() const override { return drifts_; }
  void Reset() override;
  std::unique_ptr<DriftDetector> Clone() const override {
    return std::make_unique<DdmDetector>(*this);
  }

  double ErrorRate() const;

 private:
  Options options_;
  DriftState state_ = DriftState::kStable;
  int64_t count_ = 0;
  double errors_ = 0.0;
  int64_t drifts_ = 0;
  double min_p_plus_s_ = 1e300;
  double min_s_ = 0.0;
  double min_p_ = 0.0;
};

enum class DriftDetectorKind { kPageHinkley, kDdm };

std::unique_ptr<DriftDetector> MakeDriftDetector(DriftDetectorKind kind);

}  // namespace cdpipe

#endif  // CDPIPE_DRIFT_DRIFT_DETECTOR_H_
