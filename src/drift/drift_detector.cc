#include "src/drift/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace cdpipe {

const char* DriftStateName(DriftState state) {
  switch (state) {
    case DriftState::kStable:
      return "stable";
    case DriftState::kWarning:
      return "warning";
    case DriftState::kDrift:
      return "drift";
  }
  return "?";
}

PageHinkleyDetector::PageHinkleyDetector(Options options)
    : options_(options) {
  CDPIPE_CHECK_GT(options_.lambda, 0.0);
  CDPIPE_CHECK_GE(options_.delta, 0.0);
}

DriftState PageHinkleyDetector::Observe(double error) {
  ++count_;
  // Running mean of the error signal.
  mean_ += (error - mean_) / static_cast<double>(count_);
  cumulative_ += error - mean_ - options_.delta;
  minimum_ = std::min(minimum_, cumulative_);

  if (count_ <= options_.burn_in) {
    state_ = DriftState::kStable;
    return state_;
  }
  const double statistic = cumulative_ - minimum_;
  if (statistic > options_.lambda) {
    state_ = DriftState::kDrift;
    ++drifts_;
    // Auto-reset the baseline so one change yields one alarm instead of an
    // alarm per observation (standard Page-Hinkley practice).
    const int64_t drifts = drifts_;
    Reset();
    drifts_ = drifts;
    state_ = DriftState::kDrift;
  } else if (statistic > options_.warning_fraction * options_.lambda) {
    state_ = DriftState::kWarning;
  } else {
    state_ = DriftState::kStable;
  }
  return state_;
}

void PageHinkleyDetector::Reset() {
  state_ = DriftState::kStable;
  count_ = 0;
  mean_ = 0.0;
  cumulative_ = 0.0;
  minimum_ = 0.0;
  // drifts_ survives reset: it is a lifetime counter.
}

DdmDetector::DdmDetector(Options options) : options_(options) {
  CDPIPE_CHECK_GT(options_.drift_sigmas, options_.warning_sigmas);
}

DriftState DdmDetector::Observe(double error) {
  ++count_;
  // Accept fractional error signals (e.g. chunk-mean error rates): the
  // Bernoulli proportion generalizes to the mean of [0,1] signals.
  errors_ += std::clamp(error, 0.0, 1.0);

  if (count_ < options_.min_observations) {
    state_ = DriftState::kStable;
    return state_;
  }
  const double p = errors_ / static_cast<double>(count_);
  const double s = std::sqrt(p * (1.0 - p) / static_cast<double>(count_));
  if (p + s < min_p_plus_s_) {
    min_p_plus_s_ = p + s;
    min_p_ = p;
    min_s_ = s;
  }
  if (p + s > min_p_ + options_.drift_sigmas * min_s_) {
    state_ = DriftState::kDrift;
    ++drifts_;
    // Auto-reset: restart the Bernoulli estimate from the new concept.
    const int64_t drifts = drifts_;
    Reset();
    drifts_ = drifts;
    state_ = DriftState::kDrift;
  } else if (p + s > min_p_ + options_.warning_sigmas * min_s_) {
    state_ = DriftState::kWarning;
  } else {
    state_ = DriftState::kStable;
  }
  return state_;
}

double DdmDetector::ErrorRate() const {
  return count_ > 0 ? errors_ / static_cast<double>(count_) : 0.0;
}

void DdmDetector::Reset() {
  state_ = DriftState::kStable;
  count_ = 0;
  errors_ = 0;
  min_p_plus_s_ = 1e300;
  min_p_ = 0.0;
  min_s_ = 0.0;
}

std::unique_ptr<DriftDetector> MakeDriftDetector(DriftDetectorKind kind) {
  switch (kind) {
    case DriftDetectorKind::kPageHinkley:
      return std::make_unique<PageHinkleyDetector>();
    case DriftDetectorKind::kDdm:
      return std::make_unique<DdmDetector>();
  }
  CDPIPE_CHECK(false) << "unknown drift detector kind";
  return nullptr;
}

}  // namespace cdpipe
