#include "src/storage/spill_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/string_util.h"
#include "src/dataframe/column_codec.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

constexpr char kMagic[] = "CDSPILL1";
constexpr size_t kMagicSize = 8;
constexpr size_t kTrailerSize = 8;

void PutFixed64(uint64_t v, std::string* out) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 8);
}

uint64_t GetFixed64(const char* bytes) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return v;
}

Status Corrupt(const std::string& path, const char* what) {
  return Status::InvalidArgument("spill file " + path + ": " + what);
}

}  // namespace

Result<SpillFileInfo> WriteSpillFile(const std::string& path,
                                     int64_t chunk_id,
                                     int64_t event_time_seconds,
                                     const std::vector<Column>& columns) {
  CDPIPE_FAULT_POINT("spill.write");

  // Serialize fully in memory so the trailer covers the whole payload.
  std::string payload;
  payload.append(kMagic, kMagicSize);
  PutVarint64(ZigZagEncode(chunk_id), &payload);
  PutVarint64(ZigZagEncode(event_time_seconds), &payload);
  PutVarint64(columns.size(), &payload);
  for (const Column& col : columns) EncodeColumn(col, &payload);
  PutFixed64(Fnv1a64(payload), &payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::IoError("cannot open for writing: " + tmp);
    file.write(payload.data(),
               static_cast<std::streamsize>(payload.size()));
    file.flush();
    if (!file) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + path);
  }
  SpillFileInfo info;
  info.bytes_written = static_cast<int64_t>(payload.size());
  return info;
}

Result<SpillContents> ReadSpillFile(const std::string& path) {
  CDPIPE_FAULT_POINT("spill.read");

  std::string contents;
  {
    std::ifstream file(path, std::ios::binary);
    if (!file) return Status::IoError("cannot open for reading: " + path);
    std::ostringstream slurp;
    slurp << file.rdbuf();
    if (!file && !file.eof()) {
      return Status::IoError("read failed: " + path);
    }
    contents = slurp.str();
  }
  // Corruption injection: flip one payload bit in the read buffer so the
  // checksum verification below has to catch it — one trigger is exactly
  // one detection, which the CI corruption gate counts on.
  if (CDPIPE_FAULT_TRIGGERED("spill.corrupt") && !contents.empty()) {
    contents[contents.size() / 2] ^= 0x01;
  }

  if (contents.empty()) return Corrupt(path, "empty");
  if (contents.size() < kMagicSize + kTrailerSize) {
    return Corrupt(path, "truncated header");
  }
  const std::string_view payload(contents.data(),
                                 contents.size() - kTrailerSize);
  const uint64_t expected =
      GetFixed64(contents.data() + contents.size() - kTrailerSize);
  if (Fnv1a64(payload) != expected) {
    return Corrupt(path, "checksum mismatch (truncated or corrupt)");
  }
  if (payload.substr(0, kMagicSize) != std::string_view(kMagic, kMagicSize)) {
    return Corrupt(path, "bad magic");
  }

  size_t offset = kMagicSize;
  uint64_t id_zz = 0, time_zz = 0, num_columns = 0;
  if (!GetVarint64(payload, &offset, &id_zz) ||
      !GetVarint64(payload, &offset, &time_zz) ||
      !GetVarint64(payload, &offset, &num_columns)) {
    return Corrupt(path, "truncated chunk header");
  }
  if (num_columns > payload.size()) {
    return Corrupt(path, "implausible column count");
  }
  SpillContents out;
  out.chunk_id = ZigZagDecode(id_zz);
  out.event_time_seconds = ZigZagDecode(time_zz);
  out.columns.reserve(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    CDPIPE_ASSIGN_OR_RETURN(Column col, DecodeColumn(payload, &offset));
    out.columns.push_back(std::move(col));
  }
  if (offset != payload.size()) {
    return Corrupt(path, "trailing bytes after last column");
  }
  return out;
}

Result<SpillFileInfo> WriteRawChunkSpill(const std::string& path,
                                         const RawChunk& chunk) {
  Column records(ValueType::kString);
  records.Reserve(chunk.records.size());
  for (const std::string& record : chunk.records) {
    records.AppendBorrowedString(record);
  }
  std::vector<Column> columns;
  columns.push_back(std::move(records));
  return WriteSpillFile(path, chunk.id, chunk.event_time_seconds, columns);
}

Result<RawChunk> ReadRawChunkSpill(const std::string& path,
                                   ChunkId expected_id) {
  CDPIPE_ASSIGN_OR_RETURN(SpillContents contents, ReadSpillFile(path));
  if (contents.chunk_id != expected_id) {
    return Corrupt(path, "chunk id mismatch");
  }
  if (contents.columns.size() != 1 ||
      contents.columns[0].type() != ValueType::kString) {
    return Corrupt(path, "not a raw-chunk spill");
  }
  const Column& records = contents.columns[0];
  RawChunk chunk;
  chunk.id = contents.chunk_id;
  chunk.event_time_seconds = contents.event_time_seconds;
  chunk.records.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    chunk.records.emplace_back(records.StringAt(i));
  }
  return chunk;
}

}  // namespace cdpipe
