#ifndef CDPIPE_STORAGE_CHUNK_STORE_H_
#define CDPIPE_STORAGE_CHUNK_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {

class CostModel;

/// The platform's storage unit (paper §3.2, §4.2): an append-only log of
/// raw data chunks plus a bounded cache of materialized feature chunks.
///
/// Invariants:
///  - Raw chunks are always retained (up to the optional bound N; when N is
///    exceeded the oldest raw chunk — and its feature chunk — disappear
///    entirely and are no longer sampleable).
///  - At most `max_materialized_chunks` (m) feature chunks are materialized;
///    inserting beyond m evicts the *oldest* materialized feature chunk,
///    keeping only its identifier and the reference to the raw chunk
///    (§3.2: "similar to cache eviction").
///  - A feature chunk's `origin_id` always refers to a live raw chunk.
///
/// ## Two-tier raw storage
///
/// With `memory_budget_bytes` and `spill_dir` set, the raw log becomes two
/// tiers: while `RawBytes()` exceeds the budget, the *coldest* in-memory
/// raw chunks are encoded (storage/spill_file.h) and moved to per-chunk
/// files on disk.  Spilled chunks stay fully live — sampleable, listed by
/// `LiveIds()`, valid feature origins — the tier only changes where their
/// bytes sit.  `GetRaw` answers from memory only; `FetchRaw` additionally
/// loads from disk, preferring chunks staged by the async prefetcher.
/// Because the in-memory set is always the newest suffix of the log, tier
/// residency is a deterministic function of the insertion sequence, which
/// is what makes the per-tier μ analysis in tests closed-form.
///
/// A spill-write failure degrades to keep-in-memory (the budget is
/// temporarily exceeded, counted in `spill_failures`).  A corrupt spill
/// file — checksum mismatch on load — is counted in
/// `spill_corrupt_detected` and answered by dropping the chunk entirely
/// (`spilled_chunks_dropped`): recompute-from-nothing, exactly as if the
/// retention bound had dropped it.
///
/// Threading: the store is single-writer like before — every mutation runs
/// on the owner's thread — except the prefetch staging area, which one
/// background worker fills through `PrefetchLoad` under `tier_mu_`.
///
/// The store also keeps the hit/miss counters from which the empirical
/// materialization utilization rate μ (§3.2.2) is computed, split by the
/// tier the sampled chunk's raw bytes occupy.
class ChunkStore {
 public:
  struct Options {
    /// Maximum number of raw chunks retained (0 = unbounded).  Corresponds
    /// to N in the paper's analysis.
    size_t max_raw_chunks = 0;
    /// Maximum number of materialized feature chunks (m).  0 disables
    /// materialization entirely (materialization rate 0.0).
    size_t max_materialized_chunks = SIZE_MAX;
    /// In-memory budget for the raw tier in bytes (0 = never spill).
    /// Spilling requires `spill_dir` to be set as well.
    size_t memory_budget_bytes = 0;
    /// Directory for per-chunk spill files.  Must exist and be writable;
    /// the store deletes its own files on drop and on destruction.
    std::string spill_dir;
  };

  struct Counters {
    int64_t raw_inserted = 0;
    int64_t raw_dropped = 0;
    int64_t features_inserted = 0;
    /// PutFeatures calls that replaced an already-materialized chunk (a
    /// re-materialization refresh) — deliberately *not* counted as
    /// insertions.
    int64_t features_rematerialized = 0;
    int64_t evictions = 0;
    /// Sampled chunks found materialized, split by where the chunk's raw
    /// bytes live: `memory_hits` for memory-tier chunks, `disk_hits` for
    /// spilled ones.  Their sum is the old `sample_hits`.
    int64_t memory_hits = 0;
    int64_t disk_hits = 0;
    /// Sampled chunks that had to be re-materialized.
    int64_t sample_misses = 0;

    // --- Disk-tier accounting. ---
    int64_t chunks_spilled = 0;   ///< spill files written
    int64_t spill_failures = 0;   ///< spill writes that degraded to memory
    int64_t disk_loads = 0;       ///< synchronous loads from disk
    int64_t prefetch_hits = 0;    ///< loads served by the prefetch stage
    int64_t spill_corrupt_detected = 0;  ///< checksum/decode failures seen
    int64_t spilled_chunks_dropped = 0;  ///< chunks dropped as corrupt
    int64_t spill_bytes_written = 0;     ///< encoded bytes on disk
    int64_t spill_raw_bytes = 0;         ///< in-memory bytes they replaced

    /// Either-tier hits — the quantity μ is defined over.
    int64_t SampleHits() const { return memory_hits + disk_hits; }

    double EmpiricalMu() const {
      const int64_t total = SampleHits() + sample_misses;
      return total > 0 ? static_cast<double>(SampleHits()) /
                             static_cast<double>(total)
                       : 0.0;
    }
    /// Per-tier μ; MemoryMu() + DiskMu() == EmpiricalMu().
    double MemoryMu() const {
      const int64_t total = SampleHits() + sample_misses;
      return total > 0 ? static_cast<double>(memory_hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
    double DiskMu() const {
      const int64_t total = SampleHits() + sample_misses;
      return total > 0 ? static_cast<double>(disk_hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
    /// Fraction of disk-tier loads that the prefetcher had already staged.
    double PrefetchHitRate() const {
      const int64_t total = prefetch_hits + disk_loads;
      return total > 0 ? static_cast<double>(prefetch_hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
    /// Encoded-to-raw byte ratio of everything spilled (< 1 = compression).
    double SpillCompressionRatio() const {
      return spill_raw_bytes > 0 ? static_cast<double>(spill_bytes_written) /
                                       static_cast<double>(spill_raw_bytes)
                                 : 0.0;
    }
  };

  ChunkStore() : ChunkStore(Options()) {}
  explicit ChunkStore(Options options);
  /// Deletes this store's spill files.  The owner must stop the prefetch
  /// worker first (Prefetcher's destructor drains it).
  ~ChunkStore();

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Appends a raw chunk.  Ids must be strictly increasing (they are
  /// creation timestamps).  May drop the oldest raw chunk when bounded and
  /// spill cold chunks when over the memory budget.  Invalidates pointers
  /// returned by earlier FetchRaw calls for *spilled* chunks (the pinned
  /// staging area is recycled here); GetRaw pointers stay valid.
  Status PutRaw(RawChunk chunk);

  /// Stores the materialized features for an existing raw chunk; evicts the
  /// oldest materialized feature chunk when over capacity.  Re-inserting
  /// features for an already-materialized id replaces them (counts as a
  /// re-materialization, not an insertion).
  Status PutFeatures(FeatureChunk chunk);

  size_t num_raw() const { return raw_order_.size(); }
  size_t num_materialized() const { return materialized_order_.size(); }
  size_t num_spilled() const { return spilled_.size(); }

  /// Ids of all live raw chunks (both tiers), oldest first.
  std::vector<ChunkId> LiveIds() const;

  bool Contains(ChunkId id) const {
    return raw_.count(id) > 0 || spilled_.count(id) > 0;
  }
  bool IsMaterialized(ChunkId id) const { return features_.count(id) > 0; }
  bool IsSpilled(ChunkId id) const { return spilled_.count(id) > 0; }

  /// Null when the id is not resident in the memory tier (spilled, dropped,
  /// or never inserted).  Never touches disk.
  const RawChunk* GetRaw(ChunkId id) const;
  /// Like GetRaw, but loads spilled chunks from disk — from the prefetch
  /// stage when the prefetcher got there first, synchronously otherwise.
  /// The returned pointer stays valid until the next PutRaw.  Null when the
  /// id is dead, when the spill file is corrupt (the chunk is then dropped
  /// and counted), or when the read failed (the chunk stays live for a
  /// later retry).
  const RawChunk* FetchRaw(ChunkId id);
  /// Null when not materialized.
  const FeatureChunk* GetFeatures(ChunkId id) const;

  /// Evicts the materialized feature chunk for `id` (no-op when it is not
  /// materialized); the raw chunk stays live, so the id remains sampleable
  /// and re-materializable.  Returns whether anything was evicted.  Used by
  /// memory-pressure handling and by the evict-heavy fault scenario.
  bool Evict(ChunkId id);

  /// Records the outcome of one sampling operation for the μ accounting.
  void RecordSampleAccess(ChunkId id);

  /// Snapshot of the counters (by value: the corruption count is shared
  /// with the prefetch worker).
  Counters counters() const;
  void ResetCounters();

  /// Bytes of raw chunks resident in the *memory* tier / materialized
  /// feature chunks / encoded spill files on disk.
  size_t RawBytes() const { return raw_bytes_; }
  size_t MaterializedBytes() const { return feature_bytes_; }
  size_t DiskBytes() const { return disk_bytes_; }

  bool spilling_enabled() const {
    return options_.memory_budget_bytes > 0 && !options_.spill_dir.empty();
  }

  /// Charges spill/disk-load wall time to `model` (unset = untimed).
  void set_cost_model(CostModel* model) { cost_ = model; }

  // --- Prefetch protocol (see storage/prefetcher.h). ---

  /// Drops staged/failed prefetch slots that were never consumed and are
  /// not in `keep` (the incoming lookahead window — their staged bytes are
  /// about to be wanted).  In-flight loads always survive.  Called by the
  /// prefetcher before scheduling a new window.
  void DropStalePrefetches(const std::vector<ChunkId>& keep);
  /// Owner thread: when `id` is spilled and not already staged or loading,
  /// registers an in-flight slot and returns the file to load; nullopt
  /// otherwise.
  std::optional<std::string> BeginPrefetch(ChunkId id);
  /// Prefetch worker: loads `path` and deposits the outcome into `id`'s
  /// slot.  Never throws; a corrupt file is counted here (the consumer
  /// drops the chunk without re-reading it).
  void PrefetchLoad(ChunkId id, const std::string& path);

  const Options& options() const { return options_; }

 private:
  /// Where a spilled chunk's bytes went and what they cost in memory.
  struct SpillEntry {
    std::string path;
    int64_t file_bytes = 0;
    size_t raw_bytes = 0;
  };

  /// One prefetched (or in-flight) disk load.
  struct PrefetchSlot {
    enum class State { kLoading, kReady, kFailed };
    State state = State::kLoading;
    std::unique_ptr<RawChunk> chunk;
    Status status;
    bool corrupt = false;
  };

  void EvictOldestMaterialized();
  void DropOldestRaw();
  /// Spills memory-tier chunks, coldest first, until the budget holds (or
  /// only the newest chunk is left).  A failed write stops the pass.
  void MaybeSpillOverBudget();
  /// Writes `id`'s chunk to disk and moves it to the spill tier.  Returns
  /// false on write failure (the chunk stays in memory).
  bool SpillChunk(ChunkId id);
  /// Removes a corrupt spilled chunk entirely: file, log entry, features.
  void DropSpilledChunk(ChunkId id);
  void RemoveFeaturesFor(ChunkId id);
  /// Mirrors residency (counts/bytes) into the global metrics gauges.
  void UpdateResidencyGauges() const;

  Options options_;
  Counters counters_;
  std::unordered_map<ChunkId, RawChunk> raw_;
  std::unordered_map<ChunkId, FeatureChunk> features_;
  /// Insertion (== timestamp) order; fronts are oldest.
  std::deque<ChunkId> raw_order_;         ///< both tiers
  std::deque<ChunkId> memory_order_;      ///< memory tier only
  std::deque<ChunkId> materialized_order_;
  std::unordered_map<ChunkId, SpillEntry> spilled_;
  size_t raw_bytes_ = 0;
  size_t feature_bytes_ = 0;
  size_t disk_bytes_ = 0;
  CostModel* cost_ = nullptr;

  /// Disk loads pinned for the caller; recycled at the next PutRaw.
  std::vector<std::unique_ptr<RawChunk>> pinned_;

  /// Guards the prefetch staging area (the only state the worker touches).
  mutable std::mutex tier_mu_;
  std::condition_variable tier_cv_;
  std::unordered_map<ChunkId, PrefetchSlot> prefetched_;
  /// Corruption observations from either thread; composed into counters().
  std::atomic<int64_t> corrupt_detected_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_STORAGE_CHUNK_STORE_H_
