#ifndef CDPIPE_STORAGE_CHUNK_STORE_H_
#define CDPIPE_STORAGE_CHUNK_STORE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {

/// The platform's storage unit (paper §3.2, §4.2): an append-only log of
/// raw data chunks plus a bounded cache of materialized feature chunks.
///
/// Invariants:
///  - Raw chunks are always retained (up to the optional bound N; when N is
///    exceeded the oldest raw chunk — and its feature chunk — disappear
///    entirely and are no longer sampleable).
///  - At most `max_materialized_chunks` (m) feature chunks are materialized;
///    inserting beyond m evicts the *oldest* materialized feature chunk,
///    keeping only its identifier and the reference to the raw chunk
///    (§3.2: "similar to cache eviction").
///  - A feature chunk's `origin_id` always refers to a live raw chunk.
///
/// The store also keeps the hit/miss counters from which the empirical
/// materialization utilization rate μ (§3.2.2) is computed.
class ChunkStore {
 public:
  struct Options {
    /// Maximum number of raw chunks retained (0 = unbounded).  Corresponds
    /// to N in the paper's analysis.
    size_t max_raw_chunks = 0;
    /// Maximum number of materialized feature chunks (m).  0 disables
    /// materialization entirely (materialization rate 0.0).
    size_t max_materialized_chunks = SIZE_MAX;
  };

  struct Counters {
    int64_t raw_inserted = 0;
    int64_t raw_dropped = 0;
    int64_t features_inserted = 0;
    /// PutFeatures calls that replaced an already-materialized chunk (a
    /// re-materialization refresh) — deliberately *not* counted as
    /// insertions.
    int64_t features_rematerialized = 0;
    int64_t evictions = 0;
    /// Sampled chunks that were materialized / had to be re-materialized.
    int64_t sample_hits = 0;
    int64_t sample_misses = 0;

    double EmpiricalMu() const {
      const int64_t total = sample_hits + sample_misses;
      return total > 0 ? static_cast<double>(sample_hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  ChunkStore() : ChunkStore(Options()) {}
  explicit ChunkStore(Options options);

  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Appends a raw chunk.  Ids must be strictly increasing (they are
  /// creation timestamps).  May drop the oldest raw chunk when bounded.
  Status PutRaw(RawChunk chunk);

  /// Stores the materialized features for an existing raw chunk; evicts the
  /// oldest materialized feature chunk when over capacity.  Re-inserting
  /// features for an already-materialized id replaces them (counts as a
  /// re-materialization, not an insertion).
  Status PutFeatures(FeatureChunk chunk);

  size_t num_raw() const { return raw_order_.size(); }
  size_t num_materialized() const { return materialized_order_.size(); }

  /// Ids of all live raw chunks, oldest first.
  std::vector<ChunkId> LiveIds() const;

  bool Contains(ChunkId id) const { return raw_.count(id) > 0; }
  bool IsMaterialized(ChunkId id) const { return features_.count(id) > 0; }

  /// Null when the id is unknown (dropped or never inserted).
  const RawChunk* GetRaw(ChunkId id) const;
  /// Null when not materialized.
  const FeatureChunk* GetFeatures(ChunkId id) const;

  /// Evicts the materialized feature chunk for `id` (no-op when it is not
  /// materialized); the raw chunk stays live, so the id remains sampleable
  /// and re-materializable.  Returns whether anything was evicted.  Used by
  /// memory-pressure handling and by the evict-heavy fault scenario.
  bool Evict(ChunkId id);

  /// Records the outcome of one sampling operation for the μ accounting.
  void RecordSampleAccess(ChunkId id);

  const Counters& counters() const { return counters_; }
  void ResetCounters() { counters_ = Counters{}; }

  /// Total bytes of live raw chunks / materialized feature chunks.
  size_t RawBytes() const { return raw_bytes_; }
  size_t MaterializedBytes() const { return feature_bytes_; }

  const Options& options() const { return options_; }

 private:
  void EvictOldestMaterialized();
  void DropOldestRaw();
  /// Mirrors residency (counts/bytes) into the global metrics gauges.
  void UpdateResidencyGauges() const;

  Options options_;
  Counters counters_;
  std::unordered_map<ChunkId, RawChunk> raw_;
  std::unordered_map<ChunkId, FeatureChunk> features_;
  /// Insertion (== timestamp) order; fronts are oldest.
  std::deque<ChunkId> raw_order_;
  std::deque<ChunkId> materialized_order_;
  size_t raw_bytes_ = 0;
  size_t feature_bytes_ = 0;
};

}  // namespace cdpipe

#endif  // CDPIPE_STORAGE_CHUNK_STORE_H_
