#include "src/storage/prefetcher.h"

#include <optional>
#include <string>
#include <utility>

#include "src/engine/execution_engine.h"
#include "src/storage/chunk_store.h"

namespace cdpipe {

Prefetcher::Prefetcher(ChunkStore* store, ExecutionEngine* engine)
    : store_(store), engine_(engine) {}

Prefetcher::~Prefetcher() { Drain(); }

void Prefetcher::Schedule(const std::vector<ChunkId>& ids) {
  store_->DropStalePrefetches(ids);
  for (const ChunkId id : ids) {
    std::optional<std::string> path = store_->BeginPrefetch(id);
    if (!path.has_value()) continue;
    scheduled_.fetch_add(1, std::memory_order_relaxed);
    ChunkStore* store = store_;
    engine_->SubmitAsync([store, id, path = std::move(*path)] {
      store->PrefetchLoad(id, path);
    });
  }
}

void Prefetcher::Drain() { engine_->DrainAsync(); }

Prefetcher::Stats Prefetcher::stats() const {
  Stats stats;
  stats.scheduled = scheduled_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cdpipe
