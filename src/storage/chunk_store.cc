#include "src/storage/chunk_store.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/core/cost_model.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/storage/spill_file.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

/// Registry handles are fetched once and shared by every store instance:
/// the global metrics aggregate over all stores in the process, gauges
/// reflect the most recent writer.
struct StoreMetrics {
  obs::Counter* raw_inserted;
  obs::Counter* raw_dropped;
  obs::Counter* features_inserted;
  obs::Counter* features_rematerialized;
  obs::Counter* evictions;
  obs::Counter* sample_hits;  ///< either tier (the pre-split metric)
  obs::Counter* memory_hits;
  obs::Counter* disk_hits;
  obs::Counter* sample_misses;
  obs::Counter* chunks_spilled;
  obs::Counter* spill_failures;
  obs::Counter* disk_loads;
  obs::Counter* prefetch_hits;
  obs::Counter* spill_corrupt;
  obs::Gauge* num_raw;
  obs::Gauge* num_materialized;
  obs::Gauge* raw_bytes;
  obs::Gauge* feature_bytes;
  obs::Gauge* disk_bytes;
  obs::Gauge* spill_files;
  obs::Gauge* empirical_mu;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      StoreMetrics m;
      m.raw_inserted = registry.GetCounter("chunk_store.raw_inserted");
      m.raw_dropped = registry.GetCounter("chunk_store.raw_dropped");
      m.features_inserted =
          registry.GetCounter("chunk_store.features_inserted");
      m.features_rematerialized =
          registry.GetCounter("chunk_store.features_rematerialized");
      m.evictions = registry.GetCounter("chunk_store.evictions");
      m.sample_hits = registry.GetCounter("chunk_store.sample_hits");
      m.memory_hits = registry.GetCounter("chunk_store.memory_hits");
      m.disk_hits = registry.GetCounter("chunk_store.disk_hits");
      m.sample_misses = registry.GetCounter("chunk_store.sample_misses");
      m.chunks_spilled = registry.GetCounter("chunk_store.chunks_spilled");
      m.spill_failures = registry.GetCounter("chunk_store.spill_failures");
      m.disk_loads = registry.GetCounter("chunk_store.disk_loads");
      m.prefetch_hits = registry.GetCounter("chunk_store.prefetch_hits");
      m.spill_corrupt =
          registry.GetCounter("chunk_store.spill_corrupt_detected");
      m.num_raw = registry.GetGauge("chunk_store.num_raw");
      m.num_materialized = registry.GetGauge("chunk_store.num_materialized");
      m.raw_bytes = registry.GetGauge("chunk_store.raw_bytes");
      m.feature_bytes = registry.GetGauge("chunk_store.feature_bytes");
      m.disk_bytes = registry.GetGauge("chunk_store.disk_bytes");
      m.spill_files = registry.GetGauge("chunk_store.spill_files");
      m.empirical_mu = registry.GetGauge("chunk_store.empirical_mu");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ChunkStore::ChunkStore(Options options) : options_(std::move(options)) {}

ChunkStore::~ChunkStore() {
  for (const auto& [id, entry] : spilled_) {
    std::remove(entry.path.c_str());
  }
}

Status ChunkStore::PutRaw(RawChunk chunk) {
  // Pointers handed out by FetchRaw are documented to live until the next
  // PutRaw; recycle the pinned staging area before anything else.
  pinned_.clear();
  CDPIPE_FAULT_POINT("chunk_store.put_raw");
  if (!raw_order_.empty() && chunk.id <= raw_order_.back()) {
    return Status::InvalidArgument(
        "raw chunk ids must be strictly increasing: got " +
        std::to_string(chunk.id) + " after " +
        std::to_string(raw_order_.back()));
  }
  raw_bytes_ += chunk.ByteSize();
  raw_order_.push_back(chunk.id);
  memory_order_.push_back(chunk.id);
  raw_.emplace(chunk.id, std::move(chunk));
  ++counters_.raw_inserted;
  StoreMetrics::Get().raw_inserted->Increment();
  if (options_.max_raw_chunks > 0) {
    while (raw_order_.size() > options_.max_raw_chunks) DropOldestRaw();
  }
  if (spilling_enabled()) MaybeSpillOverBudget();
  UpdateResidencyGauges();
  return Status::OK();
}

Status ChunkStore::PutFeatures(FeatureChunk chunk) {
  CDPIPE_FAULT_POINT("chunk_store.put_features");
  if (!Contains(chunk.origin_id)) {
    return Status::NotFound("no raw chunk with id " +
                            std::to_string(chunk.origin_id) +
                            " to attach features to");
  }
  if (options_.max_materialized_chunks == 0) {
    return Status::OK();  // materialization disabled (rate 0.0)
  }
  auto it = features_.find(chunk.origin_id);
  if (it != features_.end()) {
    // Replacement (re-materialization refresh): position in the eviction
    // order is unchanged — age is defined by creation timestamp, not access.
    feature_bytes_ -= it->second.ByteSize();
    feature_bytes_ += chunk.ByteSize();
    it->second = std::move(chunk);
    ++counters_.features_rematerialized;
    StoreMetrics::Get().features_rematerialized->Increment();
    UpdateResidencyGauges();
    return Status::OK();
  }
  feature_bytes_ += chunk.ByteSize();
  // Keep materialized_order_ sorted by id: chunks normally arrive in order,
  // but re-materialized older chunks may be re-inserted out of order.
  const ChunkId id = chunk.origin_id;
  if (materialized_order_.empty() || id > materialized_order_.back()) {
    materialized_order_.push_back(id);
  } else {
    auto pos = std::lower_bound(materialized_order_.begin(),
                                materialized_order_.end(), id);
    materialized_order_.insert(pos, id);
  }
  features_.emplace(id, std::move(chunk));
  ++counters_.features_inserted;
  StoreMetrics::Get().features_inserted->Increment();
  while (materialized_order_.size() > options_.max_materialized_chunks) {
    EvictOldestMaterialized();
  }
  UpdateResidencyGauges();
  return Status::OK();
}

std::vector<ChunkId> ChunkStore::LiveIds() const {
  return std::vector<ChunkId>(raw_order_.begin(), raw_order_.end());
}

const RawChunk* ChunkStore::GetRaw(ChunkId id) const {
  auto it = raw_.find(id);
  return it != raw_.end() ? &it->second : nullptr;
}

const RawChunk* ChunkStore::FetchRaw(ChunkId id) {
  if (const RawChunk* in_memory = GetRaw(id)) return in_memory;
  auto spill_it = spilled_.find(id);
  if (spill_it == spilled_.end()) return nullptr;
  const std::string path = spill_it->second.path;

  // Prefer the prefetch stage: consume a staged load, or ride out one that
  // is still in flight (still cheaper than starting over).
  {
    std::unique_lock<std::mutex> lock(tier_mu_);
    auto slot_it = prefetched_.find(id);
    if (slot_it != prefetched_.end()) {
      tier_cv_.wait(lock, [&] {
        return slot_it->second.state != PrefetchSlot::State::kLoading;
      });
      PrefetchSlot slot = std::move(slot_it->second);
      prefetched_.erase(slot_it);
      lock.unlock();
      if (slot.state == PrefetchSlot::State::kReady) {
        pinned_.push_back(std::move(slot.chunk));
        ++counters_.prefetch_hits;
        StoreMetrics::Get().prefetch_hits->Increment();
        obs::EventJournal::Global().Append(
            obs::EventKind::kPrefetchHit,
            obs::CorrelationScope::WithEntity(id));
        return pinned_.back().get();
      }
      // The worker already observed (and counted) the corruption; drop the
      // chunk without a pointless second read.
      if (slot.corrupt) {
        DropSpilledChunk(id);
        obs::EventJournal::Global().Append(
            obs::EventKind::kDegrade, obs::CorrelationScope::WithEntity(id),
            "spill_corrupt_dropped");
        UpdateResidencyGauges();
        return nullptr;
      }
      // Contained prefetch failure (injected exception, transient IO): fall
      // through to the synchronous path below and try the disk directly.
    }
  }

  Result<RawChunk> loaded = [&]() -> Result<RawChunk> {
    std::optional<CostModel::ScopedTimer> scoped;
    if (cost_ != nullptr) scoped.emplace(cost_, CostPhase::kDiskLoad);
    // A throwing read (injected fault, filesystem surprise) degrades like
    // any other read failure instead of unwinding the deployment loop.
    try {
      return ReadRawChunkSpill(path, id);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("disk load threw: ") + e.what());
    }
  }();
  if (loaded.ok()) {
    pinned_.push_back(std::make_unique<RawChunk>(std::move(loaded).value()));
    ++counters_.disk_loads;
    StoreMetrics::Get().disk_loads->Increment();
    obs::EventJournal::Global().Append(
        obs::EventKind::kDiskLoad, obs::CorrelationScope::WithEntity(id));
    return pinned_.back().get();
  }
  if (loaded.status().code() == StatusCode::kInvalidArgument) {
    // Corrupt or truncated file: this chunk's bytes are gone.  Drop it
    // entirely (recompute-from-nothing) so the sampler stops seeing it.
    corrupt_detected_.fetch_add(1, std::memory_order_relaxed);
    StoreMetrics::Get().spill_corrupt->Increment();
    DropSpilledChunk(id);
    obs::EventJournal::Global().Append(
        obs::EventKind::kDegrade, obs::CorrelationScope::WithEntity(id),
        "spill_corrupt_dropped");
    UpdateResidencyGauges();
    return nullptr;
  }
  // Open/read failure: keep the chunk live and let the caller degrade —
  // a later access retries the disk.
  obs::EventJournal::Global().Append(
      obs::EventKind::kDegrade, obs::CorrelationScope::WithEntity(id),
      "spill_read_failed");
  return nullptr;
}

const FeatureChunk* ChunkStore::GetFeatures(ChunkId id) const {
  auto it = features_.find(id);
  return it != features_.end() ? &it->second : nullptr;
}

bool ChunkStore::Evict(ChunkId id) {
  auto it = features_.find(id);
  if (it == features_.end()) return false;
  feature_bytes_ -= it->second.ByteSize();
  features_.erase(it);
  auto pos = std::find(materialized_order_.begin(), materialized_order_.end(),
                       id);
  CDPIPE_CHECK(pos != materialized_order_.end());
  materialized_order_.erase(pos);
  ++counters_.evictions;
  StoreMetrics::Get().evictions->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(id),
      "features");
  UpdateResidencyGauges();
  return true;
}

void ChunkStore::RecordSampleAccess(ChunkId id) {
  if (IsMaterialized(id)) {
    if (IsSpilled(id)) {
      ++counters_.disk_hits;
      StoreMetrics::Get().disk_hits->Increment();
    } else {
      ++counters_.memory_hits;
      StoreMetrics::Get().memory_hits->Increment();
    }
    StoreMetrics::Get().sample_hits->Increment();
  } else {
    ++counters_.sample_misses;
    StoreMetrics::Get().sample_misses->Increment();
  }
  StoreMetrics::Get().empirical_mu->Set(counters().EmpiricalMu());
}

ChunkStore::Counters ChunkStore::counters() const {
  Counters snapshot = counters_;
  snapshot.spill_corrupt_detected =
      corrupt_detected_.load(std::memory_order_relaxed);
  return snapshot;
}

void ChunkStore::ResetCounters() {
  counters_ = Counters{};
  corrupt_detected_.store(0, std::memory_order_relaxed);
  UpdateResidencyGauges();
}

void ChunkStore::DropStalePrefetches(const std::vector<ChunkId>& keep) {
  std::lock_guard<std::mutex> lock(tier_mu_);
  for (auto it = prefetched_.begin(); it != prefetched_.end();) {
    const bool wanted =
        std::find(keep.begin(), keep.end(), it->first) != keep.end();
    if (wanted || it->second.state == PrefetchSlot::State::kLoading) {
      ++it;
    } else {
      it = prefetched_.erase(it);
    }
  }
}

std::optional<std::string> ChunkStore::BeginPrefetch(ChunkId id) {
  auto spill_it = spilled_.find(id);
  if (spill_it == spilled_.end()) return std::nullopt;
  std::lock_guard<std::mutex> lock(tier_mu_);
  auto [slot_it, inserted] = prefetched_.try_emplace(id);
  if (!inserted) return std::nullopt;  // already staged or in flight
  slot_it->second.state = PrefetchSlot::State::kLoading;
  return spill_it->second.path;
}

void ChunkStore::PrefetchLoad(ChunkId id, const std::string& path) {
  std::unique_ptr<RawChunk> chunk;
  Status status;
  // A throwing fault rule on spill.read must not escape: an abandoned
  // kLoading slot would deadlock the consumer.
  try {
    std::optional<CostModel::ScopedTimer> scoped;
    if (cost_ != nullptr) scoped.emplace(cost_, CostPhase::kDiskLoad);
    Result<RawChunk> loaded = ReadRawChunkSpill(path, id);
    if (loaded.ok()) {
      chunk = std::make_unique<RawChunk>(std::move(loaded).value());
    } else {
      status = loaded.status();
    }
  } catch (const std::exception& e) {
    status = Status::Internal(std::string("prefetch threw: ") + e.what());
  } catch (...) {
    status = Status::Internal("prefetch threw a non-std exception");
  }
  const bool corrupt =
      !status.ok() && status.code() == StatusCode::kInvalidArgument;
  if (corrupt) {
    corrupt_detected_.fetch_add(1, std::memory_order_relaxed);
    StoreMetrics::Get().spill_corrupt->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(tier_mu_);
    auto it = prefetched_.find(id);
    if (it != prefetched_.end() &&
        it->second.state == PrefetchSlot::State::kLoading) {
      if (chunk != nullptr) {
        it->second.state = PrefetchSlot::State::kReady;
        it->second.chunk = std::move(chunk);
      } else {
        it->second.state = PrefetchSlot::State::kFailed;
        it->second.status = status;
        it->second.corrupt = corrupt;
      }
    }
  }
  tier_cv_.notify_all();
}

void ChunkStore::EvictOldestMaterialized() {
  CDPIPE_CHECK(!materialized_order_.empty());
  const ChunkId victim = materialized_order_.front();
  materialized_order_.pop_front();
  auto it = features_.find(victim);
  CDPIPE_CHECK(it != features_.end());
  feature_bytes_ -= it->second.ByteSize();
  // Only the content goes; the identifier and the reference to the raw
  // chunk survive implicitly (the raw chunk is still in the log).
  features_.erase(it);
  ++counters_.evictions;
  StoreMetrics::Get().evictions->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(victim),
      "features_lru");
}

void ChunkStore::DropOldestRaw() {
  CDPIPE_CHECK(!raw_order_.empty());
  const ChunkId victim = raw_order_.front();
  raw_order_.pop_front();
  auto raw_it = raw_.find(victim);
  if (raw_it != raw_.end()) {
    raw_bytes_ -= raw_it->second.ByteSize();
    raw_.erase(raw_it);
    // The memory tier is the newest suffix of the log, so an in-memory
    // victim is necessarily the memory tier's oldest entry too.
    CDPIPE_CHECK(!memory_order_.empty() && memory_order_.front() == victim);
    memory_order_.pop_front();
  } else {
    auto spill_it = spilled_.find(victim);
    CDPIPE_CHECK(spill_it != spilled_.end());
    disk_bytes_ -= static_cast<size_t>(spill_it->second.file_bytes);
    std::remove(spill_it->second.path.c_str());
    spilled_.erase(spill_it);
  }
  ++counters_.raw_dropped;
  StoreMetrics::Get().raw_dropped->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(victim),
      "raw");
  RemoveFeaturesFor(victim);
}

void ChunkStore::MaybeSpillOverBudget() {
  // Spill coldest-first until the budget holds, but never the chunk that
  // was just inserted: the deployment loop reads it back right away.
  while (raw_bytes_ > options_.memory_budget_bytes &&
         memory_order_.size() > 1) {
    if (!SpillChunk(memory_order_.front())) break;
  }
}

bool ChunkStore::SpillChunk(ChunkId id) {
  auto raw_it = raw_.find(id);
  CDPIPE_CHECK(raw_it != raw_.end());
  const std::string path = StrFormat("%s/chunk_%lld.spill",
                                     options_.spill_dir.c_str(),
                                     static_cast<long long>(id));
  Result<SpillFileInfo> written = [&]() -> Result<SpillFileInfo> {
    std::optional<CostModel::ScopedTimer> scoped;
    if (cost_ != nullptr) scoped.emplace(cost_, CostPhase::kSpill);
    return WriteRawChunkSpill(path, raw_it->second);
  }();
  if (!written.ok()) {
    // Degrade to keep-in-memory: the budget stays exceeded until a later
    // insert retries the spill.
    ++counters_.spill_failures;
    StoreMetrics::Get().spill_failures->Increment();
    obs::EventJournal::Global().Append(
        obs::EventKind::kDegrade, obs::CorrelationScope::WithEntity(id),
        "spill_write_failed");
    return false;
  }
  const size_t chunk_bytes = raw_it->second.ByteSize();
  SpillEntry entry;
  entry.path = path;
  entry.file_bytes = written->bytes_written;
  entry.raw_bytes = chunk_bytes;
  spilled_.emplace(id, std::move(entry));
  raw_bytes_ -= chunk_bytes;
  disk_bytes_ += static_cast<size_t>(written->bytes_written);
  raw_.erase(raw_it);
  CDPIPE_CHECK(!memory_order_.empty() && memory_order_.front() == id);
  memory_order_.pop_front();
  ++counters_.chunks_spilled;
  counters_.spill_bytes_written += written->bytes_written;
  counters_.spill_raw_bytes += static_cast<int64_t>(chunk_bytes);
  StoreMetrics::Get().chunks_spilled->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kSpill, obs::CorrelationScope::WithEntity(id));
  return true;
}

void ChunkStore::DropSpilledChunk(ChunkId id) {
  auto spill_it = spilled_.find(id);
  CDPIPE_CHECK(spill_it != spilled_.end());
  disk_bytes_ -= static_cast<size_t>(spill_it->second.file_bytes);
  std::remove(spill_it->second.path.c_str());
  spilled_.erase(spill_it);
  auto pos = std::find(raw_order_.begin(), raw_order_.end(), id);
  CDPIPE_CHECK(pos != raw_order_.end());
  raw_order_.erase(pos);
  ++counters_.spilled_chunks_dropped;
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(id),
      "raw_corrupt");
  RemoveFeaturesFor(id);
}

void ChunkStore::RemoveFeaturesFor(ChunkId id) {
  // A feature chunk must never outlive its raw chunk.
  auto feat_it = features_.find(id);
  if (feat_it == features_.end()) return;
  feature_bytes_ -= feat_it->second.ByteSize();
  features_.erase(feat_it);
  auto pos = std::find(materialized_order_.begin(),
                       materialized_order_.end(), id);
  CDPIPE_CHECK(pos != materialized_order_.end());
  materialized_order_.erase(pos);
}

void ChunkStore::UpdateResidencyGauges() const {
  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.num_raw->Set(static_cast<double>(raw_order_.size()));
  metrics.num_materialized->Set(
      static_cast<double>(materialized_order_.size()));
  metrics.raw_bytes->Set(static_cast<double>(raw_bytes_));
  metrics.feature_bytes->Set(static_cast<double>(feature_bytes_));
  metrics.disk_bytes->Set(static_cast<double>(disk_bytes_));
  metrics.spill_files->Set(static_cast<double>(spilled_.size()));
}

}  // namespace cdpipe
