#include "src/storage/chunk_store.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

/// Registry handles are fetched once and shared by every store instance:
/// the global metrics aggregate over all stores in the process, gauges
/// reflect the most recent writer.
struct StoreMetrics {
  obs::Counter* raw_inserted;
  obs::Counter* raw_dropped;
  obs::Counter* features_inserted;
  obs::Counter* features_rematerialized;
  obs::Counter* evictions;
  obs::Counter* sample_hits;
  obs::Counter* sample_misses;
  obs::Gauge* num_raw;
  obs::Gauge* num_materialized;
  obs::Gauge* raw_bytes;
  obs::Gauge* feature_bytes;
  obs::Gauge* empirical_mu;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      StoreMetrics m;
      m.raw_inserted = registry.GetCounter("chunk_store.raw_inserted");
      m.raw_dropped = registry.GetCounter("chunk_store.raw_dropped");
      m.features_inserted =
          registry.GetCounter("chunk_store.features_inserted");
      m.features_rematerialized =
          registry.GetCounter("chunk_store.features_rematerialized");
      m.evictions = registry.GetCounter("chunk_store.evictions");
      m.sample_hits = registry.GetCounter("chunk_store.sample_hits");
      m.sample_misses = registry.GetCounter("chunk_store.sample_misses");
      m.num_raw = registry.GetGauge("chunk_store.num_raw");
      m.num_materialized = registry.GetGauge("chunk_store.num_materialized");
      m.raw_bytes = registry.GetGauge("chunk_store.raw_bytes");
      m.feature_bytes = registry.GetGauge("chunk_store.feature_bytes");
      m.empirical_mu = registry.GetGauge("chunk_store.empirical_mu");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

ChunkStore::ChunkStore(Options options) : options_(options) {}

Status ChunkStore::PutRaw(RawChunk chunk) {
  CDPIPE_FAULT_POINT("chunk_store.put_raw");
  if (!raw_order_.empty() && chunk.id <= raw_order_.back()) {
    return Status::InvalidArgument(
        "raw chunk ids must be strictly increasing: got " +
        std::to_string(chunk.id) + " after " +
        std::to_string(raw_order_.back()));
  }
  raw_bytes_ += chunk.ByteSize();
  raw_order_.push_back(chunk.id);
  raw_.emplace(chunk.id, std::move(chunk));
  ++counters_.raw_inserted;
  StoreMetrics::Get().raw_inserted->Increment();
  if (options_.max_raw_chunks > 0) {
    while (raw_order_.size() > options_.max_raw_chunks) DropOldestRaw();
  }
  UpdateResidencyGauges();
  return Status::OK();
}

Status ChunkStore::PutFeatures(FeatureChunk chunk) {
  CDPIPE_FAULT_POINT("chunk_store.put_features");
  auto raw_it = raw_.find(chunk.origin_id);
  if (raw_it == raw_.end()) {
    return Status::NotFound("no raw chunk with id " +
                            std::to_string(chunk.origin_id) +
                            " to attach features to");
  }
  if (options_.max_materialized_chunks == 0) {
    return Status::OK();  // materialization disabled (rate 0.0)
  }
  auto it = features_.find(chunk.origin_id);
  if (it != features_.end()) {
    // Replacement (re-materialization refresh): position in the eviction
    // order is unchanged — age is defined by creation timestamp, not access.
    feature_bytes_ -= it->second.ByteSize();
    feature_bytes_ += chunk.ByteSize();
    it->second = std::move(chunk);
    ++counters_.features_rematerialized;
    StoreMetrics::Get().features_rematerialized->Increment();
    UpdateResidencyGauges();
    return Status::OK();
  }
  feature_bytes_ += chunk.ByteSize();
  // Keep materialized_order_ sorted by id: chunks normally arrive in order,
  // but re-materialized older chunks may be re-inserted out of order.
  const ChunkId id = chunk.origin_id;
  if (materialized_order_.empty() || id > materialized_order_.back()) {
    materialized_order_.push_back(id);
  } else {
    auto pos = std::lower_bound(materialized_order_.begin(),
                                materialized_order_.end(), id);
    materialized_order_.insert(pos, id);
  }
  features_.emplace(id, std::move(chunk));
  ++counters_.features_inserted;
  StoreMetrics::Get().features_inserted->Increment();
  while (materialized_order_.size() > options_.max_materialized_chunks) {
    EvictOldestMaterialized();
  }
  UpdateResidencyGauges();
  return Status::OK();
}

std::vector<ChunkId> ChunkStore::LiveIds() const {
  return std::vector<ChunkId>(raw_order_.begin(), raw_order_.end());
}

const RawChunk* ChunkStore::GetRaw(ChunkId id) const {
  auto it = raw_.find(id);
  return it != raw_.end() ? &it->second : nullptr;
}

const FeatureChunk* ChunkStore::GetFeatures(ChunkId id) const {
  auto it = features_.find(id);
  return it != features_.end() ? &it->second : nullptr;
}

bool ChunkStore::Evict(ChunkId id) {
  auto it = features_.find(id);
  if (it == features_.end()) return false;
  feature_bytes_ -= it->second.ByteSize();
  features_.erase(it);
  auto pos = std::find(materialized_order_.begin(), materialized_order_.end(),
                       id);
  CDPIPE_CHECK(pos != materialized_order_.end());
  materialized_order_.erase(pos);
  ++counters_.evictions;
  StoreMetrics::Get().evictions->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(id),
      "features");
  UpdateResidencyGauges();
  return true;
}

void ChunkStore::RecordSampleAccess(ChunkId id) {
  if (IsMaterialized(id)) {
    ++counters_.sample_hits;
    StoreMetrics::Get().sample_hits->Increment();
  } else {
    ++counters_.sample_misses;
    StoreMetrics::Get().sample_misses->Increment();
  }
  StoreMetrics::Get().empirical_mu->Set(counters_.EmpiricalMu());
}

void ChunkStore::EvictOldestMaterialized() {
  CDPIPE_CHECK(!materialized_order_.empty());
  const ChunkId victim = materialized_order_.front();
  materialized_order_.pop_front();
  auto it = features_.find(victim);
  CDPIPE_CHECK(it != features_.end());
  feature_bytes_ -= it->second.ByteSize();
  // Only the content goes; the identifier and the reference to the raw
  // chunk survive implicitly (the raw chunk is still in the log).
  features_.erase(it);
  ++counters_.evictions;
  StoreMetrics::Get().evictions->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(victim),
      "features_lru");
}

void ChunkStore::DropOldestRaw() {
  CDPIPE_CHECK(!raw_order_.empty());
  const ChunkId victim = raw_order_.front();
  raw_order_.pop_front();
  auto raw_it = raw_.find(victim);
  CDPIPE_CHECK(raw_it != raw_.end());
  raw_bytes_ -= raw_it->second.ByteSize();
  raw_.erase(raw_it);
  ++counters_.raw_dropped;
  StoreMetrics::Get().raw_dropped->Increment();
  obs::EventJournal::Global().Append(
      obs::EventKind::kEvict, obs::CorrelationScope::WithEntity(victim),
      "raw");
  // A feature chunk must never outlive its raw chunk.
  auto feat_it = features_.find(victim);
  if (feat_it != features_.end()) {
    feature_bytes_ -= feat_it->second.ByteSize();
    features_.erase(feat_it);
    auto pos = std::find(materialized_order_.begin(),
                         materialized_order_.end(), victim);
    CDPIPE_CHECK(pos != materialized_order_.end());
    materialized_order_.erase(pos);
  }
}

void ChunkStore::UpdateResidencyGauges() const {
  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.num_raw->Set(static_cast<double>(raw_order_.size()));
  metrics.num_materialized->Set(
      static_cast<double>(materialized_order_.size()));
  metrics.raw_bytes->Set(static_cast<double>(raw_bytes_));
  metrics.feature_bytes->Set(static_cast<double>(feature_bytes_));
}

}  // namespace cdpipe
