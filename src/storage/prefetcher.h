#ifndef CDPIPE_STORAGE_PREFETCHER_H_
#define CDPIPE_STORAGE_PREFETCHER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/dataframe/chunk.h"

namespace cdpipe {

class ChunkStore;
class ExecutionEngine;

/// Asynchronous disk-tier prefetcher.
///
/// The deployment loop knows which chunk ids the *next* proactive sample
/// will draw — the seeded sampler is deterministic and `Rng` is copyable,
/// so the upcoming picks can be computed on a clone without consuming
/// entropy (see DataManager::PrefetchForNextSample).  `Schedule` registers
/// those ids with the store and enqueues one load per spilled id on the
/// engine's async lane; the loads overlap the SGD work between samples, so
/// by the time the sampler actually asks, `FetchRaw` finds the bytes
/// staged and the disk latency is hidden.
///
/// Prefetching is pure overlap: it never changes which chunks are sampled
/// or what they decode to, only when the disk is read.  A prefetch failure
/// (injected exception, IO error) is contained by the store's deposit
/// protocol and the sample path falls back to a synchronous load.
///
/// Thread contract: Schedule runs on the store's owner thread; the loads
/// run on the engine's single async worker.  The destructor drains the
/// lane so no load can outlive the store this prefetcher points at —
/// declare the Prefetcher after (destroy it before) its store and engine.
class Prefetcher {
 public:
  struct Stats {
    int64_t scheduled = 0;  ///< loads enqueued on the async lane
  };

  Prefetcher(ChunkStore* store, ExecutionEngine* engine);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Stages the spilled chunks among `ids`: drops stale staged loads from
  /// the previous window, then enqueues one async load per spilled id that
  /// is not already staged or in flight.  Memory-resident ids are ignored.
  void Schedule(const std::vector<ChunkId>& ids);

  /// Blocks until every enqueued load has deposited its outcome.
  void Drain();

  Stats stats() const;

 private:
  ChunkStore* store_;
  ExecutionEngine* engine_;
  std::atomic<int64_t> scheduled_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_STORAGE_PREFETCHER_H_
