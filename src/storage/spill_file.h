#ifndef CDPIPE_STORAGE_SPILL_FILE_H_
#define CDPIPE_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/dataframe/column.h"

namespace cdpipe {

/// Per-chunk spill files for the chunk store's disk tier.
///
/// Format (all integers varint-coded unless noted):
///
///   "CDSPILL1"            8-byte magic
///   chunk_id              zigzag varint
///   event_time_seconds    zigzag varint
///   num_columns           varint
///   columns               column_codec encodings, back to back
///   checksum              8-byte little-endian FNV-1a over everything above
///
/// Writes serialize fully in memory, land in `<path>.tmp`, and commit with
/// an atomic rename — a crashed writer leaves either the old file or none,
/// never a torn one (the PR 3 checkpoint idiom).  Reads verify the checksum
/// against the raw bytes before decoding a single column.
///
/// Error taxonomy: `kIoError` for open/write/rename failures (the chunk
/// store degrades to keep-in-memory), `kInvalidArgument` for anything wrong
/// with the bytes themselves — bad magic, truncation, checksum mismatch,
/// column decode failure — which the store treats as corruption and answers
/// with drop-chunk accounting.
///
/// Fault sites: `spill.write` (fails/throws a write), `spill.read`
/// (fails/throws a read), `spill.corrupt` (flips a payload bit in the read
/// buffer so the checksum path detects it — one trigger, one detection).

struct SpillFileInfo {
  int64_t bytes_written = 0;  ///< final file size, checksum included
};

struct SpillContents {
  int64_t chunk_id = 0;
  int64_t event_time_seconds = 0;
  std::vector<Column> columns;
};

/// Writes `columns` as a spill file at `path` (atomic tmp+rename).
Result<SpillFileInfo> WriteSpillFile(const std::string& path,
                                     int64_t chunk_id,
                                     int64_t event_time_seconds,
                                     const std::vector<Column>& columns);

/// Reads and fully verifies a spill file.
Result<SpillContents> ReadSpillFile(const std::string& path);

/// Convenience wrappers for the raw-chunk tier: a RawChunk spills as a
/// single string column of its records (bit-exact round trip — no parsing).
Result<SpillFileInfo> WriteRawChunkSpill(const std::string& path,
                                         const RawChunk& chunk);
Result<RawChunk> ReadRawChunkSpill(const std::string& path,
                                   ChunkId expected_id);

}  // namespace cdpipe

#endif  // CDPIPE_STORAGE_SPILL_FILE_H_
